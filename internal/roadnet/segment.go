// Package roadnet simulates the Queensland Department of Transport and Main
// Roads (QDTMR) road and crash data that the paper studied but could not
// publish. It generates a network of 1 km road segments with the attribute
// families the paper lists (functional design, surface properties, surface
// distress, surface wear, roadway features and traffic), then drives a
// zero-altered negative binomial crash counting process from a latent risk
// score computed from those attributes.
//
// The substitution is behaviour-preserving for the paper's experiments
// because the headline phenomenon — road segments with one or two crashes
// looking like no-crash roads — is not painted onto labels; it emerges from
// the counting process: a low-risk segment occasionally draws one or two
// crashes by chance, so the low-count band is attribute-wise mixed with the
// zero band, while high counts require genuinely hazardous attributes.
// Marginals are calibrated against the paper's Table 1 and Figure 1.
package roadnet

import (
	"fmt"
	"math"

	"roadcrash/internal/rng"
)

// SurfaceType enumerates seal types in the synthetic network.
type SurfaceType int

// The seal types the synthetic network draws from.
const (
	Asphalt SurfaceType = iota
	SpraySeal
	Concrete
)

// surfaceNames are the nominal level names used in datasets.
var surfaceNames = []string{"asphalt", "spray-seal", "concrete"}

// String returns the surface name.
func (s SurfaceType) String() string { return surfaceNames[s] }

// Segment is one kilometre of road with the study's attribute set. F60 is
// the sparse SCRIM skid-resistance attribute that gates inclusion in the
// study dataset; HasF60 mirrors the paper's reduction from 42,388 to 16,750
// usable crashes.
type Segment struct {
	ID          int
	AADT        float64     // annual average daily traffic, vehicles/day
	Lanes       int         // lane count, 1..4
	SpeedLimit  float64     // posted limit, km/h
	SealWidth   float64     // m
	Surface     SurfaceType // seal type
	SealAge     float64     // years since resurfacing
	F60         float64     // skid resistance at 60 km/h (SCRIM), ~0.25..0.75
	HasF60      bool        // whether F60 was surveyed on this segment
	TextureMM   float64     // sensor-measured texture depth, mm
	RoughnessM  float64     // IRI roughness, m/km
	RuttingMM   float64     // mean rut depth, mm
	Deflection  float64     // pavement deflection, mm
	CurveDeg    float64     // horizontal curvature, deg/km
	GradientPct float64     // longitudinal gradient, %
	WetExposure float64     // fraction of wet-weather days
	XKm         float64     // stable midpoint easting on the study region, km
	YKm         float64     // stable midpoint northing on the study region, km

	// Outcomes of the counting process.
	Risk       float64 // latent log-rate of the 4-year crash process
	Structural bool    // structurally safe: zero-altered hurdle not crossed
	Crashes    int     // total 4-year crash count
	YearCounts []int   // per-year counts, len == config.Years
}

// Config parameterizes the synthetic network. DefaultConfig is calibrated
// so the derived study datasets match the paper's Table 1 shape.
type Config struct {
	Segments  int    // network size in 1 km segments
	Years     int    // observation window (the paper uses 2004-2007)
	FirstYear int    // calendar year of the first observation year
	Seed      uint64 // master seed; all randomness derives from it

	// F60Coverage is the fraction of segments carrying a skid-resistance
	// survey. The paper's usable data was ~40% of all crashes.
	F60Coverage float64

	// RiskNoise is the s.d. of the risk component not explained by the
	// recorded attributes (driver behaviour, weather shocks).
	RiskNoise float64

	// Dispersion is the negative binomial size parameter; smaller values
	// give the heavier tail seen in Figure 1.
	Dispersion float64

	// HurdleMid and HurdleScale place the logistic structural-zero hurdle
	// on the risk scale: P(structurally safe) = 1/(1+exp((risk-HurdleMid)/HurdleScale)).
	HurdleMid   float64
	HurdleScale float64

	// RiskShift uniformly shifts risk, scaling expected counts.
	RiskShift float64
}

// DefaultConfig returns the calibrated configuration. With the default seed
// it produces ~42k crashes network-wide and ~16.7k on F60-surveyed
// segments, mirroring the paper's data reduction.
func DefaultConfig() Config {
	return Config{
		Segments:    55000,
		Years:       4,
		FirstYear:   2004,
		Seed:        20110322, // EDBT 2011 opening day
		F60Coverage: 0.47,
		RiskNoise:   0.15,
		Dispersion:  25, // near-Poisson: the count tail comes from the risk spread
		HurdleMid:   1.0,
		HurdleScale: 1.05,
		RiskShift:   0.0,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Segments <= 0:
		return fmt.Errorf("roadnet: Segments must be positive, got %d", c.Segments)
	case c.Years <= 0:
		return fmt.Errorf("roadnet: Years must be positive, got %d", c.Years)
	case c.F60Coverage < 0 || c.F60Coverage > 1:
		return fmt.Errorf("roadnet: F60Coverage %v outside [0,1]", c.F60Coverage)
	case c.Dispersion <= 0:
		return fmt.Errorf("roadnet: Dispersion must be positive, got %v", c.Dispersion)
	case c.HurdleScale <= 0:
		return fmt.Errorf("roadnet: HurdleScale must be positive, got %v", c.HurdleScale)
	case c.RiskNoise < 0:
		return fmt.Errorf("roadnet: RiskNoise must be non-negative, got %v", c.RiskNoise)
	}
	return nil
}

// Network is a generated road network.
type Network struct {
	Config   Config
	Segments []Segment
}

// genAttributes draws the road attributes for one segment. Correlations
// follow engineering practice: busier roads have more lanes, wider seals
// and faster limits; skid resistance and texture decay with seal age and
// traffic-driven surface wear.
func genAttributes(r *rng.Source, id int) Segment {
	s := Segment{ID: id}

	// Road class drives exposure: minor rural, rural highway, urban
	// arterial, motorway.
	class := r.Choice([]float64{0.42, 0.30, 0.20, 0.08})
	switch class {
	case 0:
		s.AADT = math.Exp(r.Normal(6.0, 0.6)) // ~400
		s.Lanes = 1 + r.Intn(2)
		s.SpeedLimit = 80 + 20*float64(r.Intn(2))
		s.SealWidth = r.TruncNormal(6.5, 1.0, 4.5, 9)
	case 1:
		s.AADT = math.Exp(r.Normal(7.2, 0.5)) // ~1300
		s.Lanes = 2
		s.SpeedLimit = 100
		s.SealWidth = r.TruncNormal(8.5, 1.0, 6.5, 11)
	case 2:
		s.AADT = math.Exp(r.Normal(8.6, 0.5)) // ~5400
		s.Lanes = 2 + r.Intn(2)
		s.SpeedLimit = 60 + 20*float64(r.Intn(2))
		s.SealWidth = r.TruncNormal(10.5, 1.3, 7.5, 14)
	default:
		s.AADT = math.Exp(r.Normal(9.8, 0.45)) // ~18000
		s.Lanes = 3 + r.Intn(2)
		s.SpeedLimit = 100 + 10*float64(r.Intn(2))
		s.SealWidth = r.TruncNormal(13, 1.2, 10, 16)
	}

	// Surface: motorways are mostly asphalt/concrete, minor roads sprayed.
	switch class {
	case 0, 1:
		s.Surface = SurfaceType(r.Choice([]float64{0.25, 0.72, 0.03}))
	case 2:
		s.Surface = SurfaceType(r.Choice([]float64{0.65, 0.28, 0.07}))
	default:
		s.Surface = SurfaceType(r.Choice([]float64{0.70, 0.05, 0.25}))
	}

	s.SealAge = r.Gamma(2.2, 4.0) // mean ~9 years, long tail
	if s.SealAge > 35 {
		s.SealAge = 35
	}

	// Surface wear: skid resistance decays with age and cumulative traffic
	// polishing; spray seals start higher but decay faster.
	wear := 0.010*s.SealAge + 0.018*math.Log1p(s.AADT/1000)
	base := 0.62
	if s.Surface == SpraySeal {
		base = 0.66
		wear *= 1.25
	}
	if s.Surface == Concrete {
		base = 0.58
		wear *= 0.8
	}
	s.F60 = r.TruncNormal(base-wear, 0.055, 0.20, 0.80)

	// Texture depth decays similarly; spray seals are coarser.
	texBase := 0.75
	if s.Surface == SpraySeal {
		texBase = 1.05
	}
	if s.Surface == Concrete {
		texBase = 0.55
	}
	s.TextureMM = r.TruncNormal(texBase-0.012*s.SealAge, 0.12, 0.15, 1.8)

	// Surface distress grows with age and deflection (structural weakness).
	s.Deflection = r.TruncNormal(0.7+0.015*s.SealAge, 0.22, 0.15, 2.2)
	s.RoughnessM = r.TruncNormal(1.7+0.05*s.SealAge+0.4*s.Deflection, 0.5, 0.8, 7.5)
	s.RuttingMM = r.TruncNormal(3+0.25*s.SealAge+2.5*s.Deflection, 2.0, 0, 28)

	// Geometry: minor rural roads wind and climb more.
	curveMean := []float64{55, 35, 18, 6}[class]
	s.CurveDeg = r.Gamma(1.6, curveMean/1.6)
	if s.CurveDeg > 220 {
		s.CurveDeg = 220
	}
	s.GradientPct = math.Abs(r.Normal(0, []float64{3.2, 2.4, 1.6, 1.0}[class]))
	if s.GradientPct > 12 {
		s.GradientPct = 12
	}

	s.WetExposure = r.Beta(2.2, 8.5) // mean ~0.21 of days wet

	// Placement draws from a private per-id stream (see space.go), so the
	// shared attribute stream consumes exactly what it did before segments
	// had coordinates.
	s.XKm, s.YKm = placeSegment(id, class)

	return s
}

// riskScore computes the latent 4-year log crash rate of a segment from its
// attributes. Coefficients encode the paper's domain findings: exposure
// (AADT, non-linearly), skid resistance and texture depth "found to have
// strong relationship with roads having crashes", the wet-weather
// interaction with skid resistance, geometry and surface distress.
func riskScore(s *Segment, cfg Config, r *rng.Source) float64 {
	logAADT := math.Log(s.AADT)
	risk := -7.55 + cfg.RiskShift

	// Exposure: sub-linear in traffic, challenging the naive assumption of
	// a linear crash-traffic relationship (§3 of the paper).
	risk += 0.82 * logAADT

	// Skid resistance deficit below the 0.55 investigatory level.
	skidDeficit := math.Max(0, 0.55-s.F60)
	risk += 6.0 * skidDeficit

	// Texture deficit below 0.6 mm impairs wet braking.
	texDeficit := math.Max(0, 0.6-s.TextureMM)
	risk += 1.8 * texDeficit

	// Wet exposure interacts with low skid resistance.
	risk += 7.0 * s.WetExposure * skidDeficit
	risk += 0.55 * s.WetExposure

	// Geometry.
	risk += 0.0045 * s.CurveDeg
	risk += 0.035 * s.GradientPct
	risk += 0.004 * (s.SpeedLimit - 80)

	// Surface distress.
	risk += 0.055 * (s.RoughnessM - 2.5)
	risk += 0.012 * (s.RuttingMM - 5)
	risk += 0.10 * (s.Deflection - 0.8)

	// Narrow seals are less forgiving.
	risk += 0.035 * (8.5 - s.SealWidth)

	// Unexplained component (driver mix, enforcement, weather shocks).
	risk += r.Normal(0, cfg.RiskNoise)

	// Gain widens the attribute-driven spread around the network-typical
	// risk so that mid-range thresholds (CP-4, CP-8) are sharply
	// attribute-determined, as the paper's mid-sweep accuracies indicate.
	const pivot, gain = -0.8, 1.3
	return pivot + gain*(risk-pivot)
}

// Generate builds the network. Generation is deterministic in cfg.Seed.
func Generate(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	master := rng.New(cfg.Seed)
	attrRng := master.Split()
	riskRng := master.Split()
	countRng := master.Split()
	surveyRng := master.Split()

	net := &Network{Config: cfg, Segments: make([]Segment, cfg.Segments)}
	for i := range net.Segments {
		s := genAttributes(attrRng, i)
		s.Risk = riskScore(&s, cfg, riskRng)
		s.HasF60 = surveyRng.Bool(surveyProb(cfg, &s))
		s.YearCounts = make([]int, cfg.Years)

		// Zero-altered counting process: structurally safe segments never
		// record a crash; the rest draw a zero-truncated negative binomial.
		pSafe := 1 / (1 + math.Exp((s.Risk-cfg.HurdleMid)/cfg.HurdleScale))
		if countRng.Float64() < pSafe {
			s.Structural = true
		} else {
			// The crash rate saturates for the worst segments (remedial
			// works are triggered long before a segment reaches
			// catastrophic rates), compressing the upper tail toward
			// Figure 1's shape. The saturation also means attributes
			// barely distinguish extreme-rate segments from merely bad
			// ones, so very high thresholds (CP-32, CP-64) are separated
			// mostly by counting noise — the effect behind the paper's
			// collapsing positive predictive values at those thresholds.
			eff := s.Risk
			if eff > 1.3 {
				// Above the knee the attribute-driven component is
				// compressed and replaced by structural variation (local
				// black-spot geometry, intersection exposure) the recorded
				// attributes cannot see.
				eff = 1.3 + 0.45*(eff-1.3) + countRng.Normal(0, 0.75)
			}
			lambda := math.Exp(eff)
			if lambda > 110 {
				lambda = 110
			}
			s.Crashes = countRng.ZeroAltered(0, func() int {
				return countRng.NegBinomial(lambda, cfg.Dispersion)
			})
			spreadYears(countRng, s.Crashes, s.YearCounts)
		}
		net.Segments[i] = s
	}
	return net, nil
}

// surveyProb biases the skid-resistance survey toward the busier network,
// as real survey programs do.
func surveyProb(cfg Config, s *Segment) float64 {
	p := cfg.F60Coverage * (0.85 + 0.45*(math.Log(s.AADT)-7)/3)
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// spreadYears multinomially distributes total crashes across years with
// mildly uneven year weights, matching Figure 1's "fairly constant from
// year to year".
func spreadYears(r *rng.Source, total int, years []int) {
	if len(years) == 0 {
		return
	}
	weights := make([]float64, len(years))
	for i := range weights {
		weights[i] = 1 + 0.06*math.Sin(float64(i)*1.7)
	}
	for c := 0; c < total; c++ {
		years[r.Choice(weights)]++
	}
}

// Totals reports network-level counts: segments with any crash, total
// crashes, and crashes on F60-surveyed segments.
func (n *Network) Totals() (crashSegments, totalCrashes, surveyedCrashes int) {
	for i := range n.Segments {
		s := &n.Segments[i]
		if s.Crashes > 0 {
			crashSegments++
			totalCrashes += s.Crashes
			if s.HasF60 {
				surveyedCrashes += s.Crashes
			}
		}
	}
	return
}
