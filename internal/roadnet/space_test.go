package roadnet

import (
	"math"
	"testing"
)

func TestPlaceSegmentStableAndInExtent(t *testing.T) {
	for id := 0; id < 2000; id++ {
		for class := 0; class < 4; class++ {
			x1, y1 := placeSegment(id, class)
			x2, y2 := placeSegment(id, class)
			if x1 != x2 || y1 != y2 {
				t.Fatalf("id %d class %d: placement not stable: (%v,%v) vs (%v,%v)", id, class, x1, y1, x2, y2)
			}
			if x1 < 0 || x1 >= ExtentKm || y1 < 0 || y1 >= ExtentKm {
				t.Fatalf("id %d class %d: (%v,%v) outside [0,%v)", id, class, x1, y1, ExtentKm)
			}
			if x1 != math.Round(x1*100)/100 || y1 != math.Round(y1*100)/100 {
				t.Fatalf("id %d class %d: (%v,%v) not at 10 m register precision", id, class, x1, y1)
			}
		}
	}
}

// TestPlacementClassClustering pins the spatial structure the hotspot
// workload relies on: busy classes sit near town centers, minor rural
// roads spread over the whole region.
func TestPlacementClassClustering(t *testing.T) {
	meanCenterDist := func(class int) float64 {
		sum := 0.0
		const n = 3000
		for id := 0; id < n; id++ {
			x, y := placeSegment(id, class)
			best := math.Inf(1)
			for _, c := range townCenters {
				dx, dy := x-c[0], y-c[1]
				if d := math.Hypot(dx, dy); d < best {
					best = d
				}
			}
			sum += best
		}
		return sum / n
	}
	rural, arterial := meanCenterDist(0), meanCenterDist(2)
	if arterial >= rural/2 {
		t.Fatalf("urban arterials not clustered: mean center distance %.1f km vs rural %.1f km", arterial, rural)
	}
}

// TestNetworkCoordinates checks generated segments carry coordinates and
// that the study rows expose them in the x_km/y_km columns, constant
// across a segment's year rows.
func TestNetworkCoordinates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Segments = 400
	net, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[[2]float64]bool{}
	for i := range net.Segments {
		s := &net.Segments[i]
		if s.XKm < 0 || s.XKm >= ExtentKm || s.YKm < 0 || s.YKm >= ExtentKm {
			t.Fatalf("segment %d at (%v,%v) outside the study region", s.ID, s.XKm, s.YKm)
		}
		distinct[[2]float64{s.XKm, s.YKm}] = true
	}
	if len(distinct) < 300 {
		t.Fatalf("only %d distinct placements over 400 segments", len(distinct))
	}
}

func TestScenarioStreamCoordinateColumns(t *testing.T) {
	opt := DefaultScenarioOptions(80)
	s := mustScenario(t, opt)
	xCol, yCol := -1, -1
	for j, a := range s.Attrs() {
		switch a.Name {
		case AttrXKm:
			xCol = j
		case AttrYKm:
			yCol = j
		}
	}
	if xCol < 0 || yCol < 0 {
		t.Fatalf("stream schema lacks %s/%s", AttrXKm, AttrYKm)
	}
	rows := drainScenario(t, s)
	for i, row := range rows {
		x, y := row[xCol], row[yCol]
		if x < 0 || x >= ExtentKm || y < 0 || y >= ExtentKm {
			t.Fatalf("row %d at (%v,%v) outside the study region", i, x, y)
		}
		// Coordinates are stable across a segment's year rows: no survey
		// jitter, no quantization drift.
		first := rows[(i/opt.Years)*opt.Years]
		if x != first[xCol] || y != first[yCol] {
			t.Fatalf("row %d: coordinates move within segment: (%v,%v) vs (%v,%v)",
				i, x, y, first[xCol], first[yCol])
		}
	}
}
