package compiled

import (
	"roadcrash/internal/mining/bayes"
	"roadcrash/internal/mining/ensemble"
	"roadcrash/internal/mining/logit"
	"roadcrash/internal/mining/tree"
)

// Compile lowers a decoded learner into its compiled evaluation form.
// Every artifact learner kind maps to a ColumnScorer: trees flatten,
// naive Bayes precomputes its log-probability tables, ensembles compile
// their members, and logistic models (already columnar via buffer-reusing
// ScoreColumns) pass through. An unrecognized scorer is returned
// unchanged, so callers can compile unconditionally — interpretation is
// the graceful fallback, never an error.
func Compile(s Scorer) Scorer {
	switch m := s.(type) {
	case *tree.Tree:
		return m.Compile()
	case *bayes.Model:
		return m.Compile()
	case *ensemble.Bagging:
		return m.Compile()
	case *ensemble.AdaBoost:
		return m.Compile()
	case *logit.Model:
		return m
	}
	return s
}

// Columnar reports whether the scorer supports columnar batch evaluation,
// returning the ColumnScorer view when it does. Compiled forms always do;
// an interpreted fallback does not.
func Columnar(s Scorer) (ColumnScorer, bool) {
	cs, ok := s.(ColumnScorer)
	return cs, ok
}
