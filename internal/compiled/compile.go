package compiled

import (
	"roadcrash/internal/geo"
	"roadcrash/internal/mining/bayes"
	"roadcrash/internal/mining/ensemble"
	"roadcrash/internal/mining/logit"
	"roadcrash/internal/mining/m5"
	"roadcrash/internal/mining/neural"
	"roadcrash/internal/mining/tree"
	"roadcrash/internal/mining/zinb"
)

// Compile lowers a decoded learner into its compiled evaluation form.
// Every artifact learner kind maps to a ColumnScorer: trees flatten,
// naive Bayes precomputes its log-probability tables, ensembles compile
// their members, and M5 model trees lower to a flat array tree whose
// leaves run columnar dot products. The already-columnar linear-algebra
// learners pass through: logistic models, ZINB threshold classifiers (two
// fused linear predictors scoring P(count > t)) and neural networks
// (fused layer loops) all carry buffer-reusing ScoreColumns of their own.
// An unrecognized scorer is returned unchanged, so callers can compile
// unconditionally — interpretation is the graceful fallback, never an
// error.
func Compile(s Scorer) Scorer {
	switch m := s.(type) {
	case *tree.Tree:
		return m.Compile()
	case *bayes.Model:
		return m.Compile()
	case *ensemble.Bagging:
		return m.Compile()
	case *ensemble.AdaBoost:
		return m.Compile()
	case *logit.Model:
		return m
	case zinb.ThresholdClassifier:
		return m
	case *m5.Model:
		return m.Compile()
	case *neural.Model:
		return m
	case *geo.Model:
		// The hotspot risk surface is already a flat per-cell array; its
		// lookups are their own compiled form.
		return m
	}
	return s
}

// Columnar reports whether the scorer supports columnar batch evaluation,
// returning the ColumnScorer view when it does. Compiled forms always do;
// an interpreted fallback does not.
func Columnar(s Scorer) (ColumnScorer, bool) {
	cs, ok := s.(ColumnScorer)
	return cs, ok
}
