package compiled_test

import (
	"fmt"
	"testing"

	"roadcrash/internal/artifact"
	"roadcrash/internal/compiled"
	"roadcrash/internal/data"
	"roadcrash/internal/roadnet"
)

// benchBlock materializes one scenario chunk mapped into the model schema
// — the exact columnar block the serving hot path scores — plus its
// row-major transpose for the interpreted baseline.
func benchBlock(b *testing.B, a *artifact.Artifact, n int) (cols [][]float64, rows [][]float64) {
	b.Helper()
	opt := roadnet.DefaultScenarioOptions(n)
	opt.ChunkSize = n
	opt.Seed = 99
	stream, err := roadnet.NewScenarioStream(opt)
	if err != nil {
		b.Fatal(err)
	}
	ds, err := data.ReadAll("bench", stream)
	if err != nil {
		b.Fatal(err)
	}
	mapper, err := artifact.NewRowMapper(a)
	if err != nil {
		b.Fatal(err)
	}
	rows, err = mapper.MapDataset(ds)
	if err != nil {
		b.Fatal(err)
	}
	cols = make([][]float64, len(rows[0]))
	for j := range cols {
		cols[j] = make([]float64, len(rows))
		for i, row := range rows {
			cols[j][i] = row[j]
		}
	}
	return cols, rows
}

// BenchmarkCompiledScore measures the inference hot path per learner
// kind: the interpreted row-at-a-time engine against the compiled
// columnar engine, over one 4096-row scenario block mapped into the model
// schema. Run it as
//
//	go test -run='^$' -bench=BenchmarkCompiledScore -benchmem ./internal/compiled
//
// and divide 4096 by the per-op time for rows/s. The CI bench smoke
// executes a 1x pass so the harness cannot rot.
func BenchmarkCompiledScore(b *testing.B) {
	const n = 4096
	ds := trainDataset(600, 11)
	models := learners(b, ds)
	for _, kind := range []artifact.Kind{
		artifact.KindDecisionTree, artifact.KindRegressionTree,
		artifact.KindNaiveBayes, artifact.KindLogistic,
		artifact.KindBagging, artifact.KindAdaBoost,
	} {
		interp := models[kind]
		a, err := artifact.New("bench", kind, interp, ds.Attrs(), 8, 1, "label", nil)
		if err != nil {
			b.Fatal(err)
		}
		cols, rows := benchBlock(b, a, n)
		cs, ok := compiled.Columnar(compiled.Compile(interp))
		if !ok {
			b.Fatalf("%s: no columnar engine", kind)
		}
		out := make([]float64, n)
		b.Run(fmt.Sprintf("%s/interpreted", kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for r, row := range rows {
					out[r] = interp.PredictProb(row)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/compiled", kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cs.ScoreColumns(cols, out)
			}
		})
	}
}
