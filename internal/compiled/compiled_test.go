package compiled_test

import (
	"math"
	"testing"

	"roadcrash/internal/artifact"
	"roadcrash/internal/compiled"
	"roadcrash/internal/data"
	"roadcrash/internal/geo"
	"roadcrash/internal/mining/bayes"
	"roadcrash/internal/mining/ensemble"
	"roadcrash/internal/mining/logit"
	"roadcrash/internal/mining/m5"
	"roadcrash/internal/mining/neural"
	"roadcrash/internal/mining/tree"
	"roadcrash/internal/mining/zinb"
	"roadcrash/internal/rng"
	"roadcrash/internal/roadnet"
)

// trainDataset builds a mixed-kind training set whose attribute names
// overlap the roadnet scenario schema, so the stream differential can
// drive trained models with live ScenarioStream traffic. The surface
// attribute deliberately trains on only two of the three scenario levels:
// "concrete" rows arriving from a stream are unseen levels and must score
// as missing on both engines. crash_count carries the same signal as a
// count — zero on quiet segments, growing with the score — with a few
// missing cells, so the zinb hurdle has both components to fit.
func trainDataset(n int, seed uint64) *data.Dataset {
	r := rng.New(seed)
	b := data.NewBuilder("compile-train").
		Interval(roadnet.AttrAADT).
		Interval(roadnet.AttrSealAge).
		Nominal(roadnet.AttrSurface, "asphalt", "spray-seal").
		Binary(roadnet.AttrWetCrash).
		Binary("label").
		Interval("label_num").
		Interval(roadnet.CrashCountAttr)
	for i := 0; i < n; i++ {
		aadt := 500 + 4000*r.Float64()
		age := 25 * r.Float64()
		surface := float64(r.Intn(2))
		wet := float64(r.Intn(2))
		score := aadt/1000 + 0.2*age + 0.8*surface + 0.5*wet + r.Normal(0, 0.7)
		label := 0.0
		if score > 3.4 {
			label = 1
		}
		count := math.Floor(score) - 4
		if count < 0 {
			count = 0
		}
		if r.Float64() < 0.06 {
			age = data.Missing
		}
		if r.Float64() < 0.06 {
			surface = data.Missing
		}
		if r.Float64() < 0.04 {
			count = data.Missing
		}
		b.Row(aadt, age, surface, wet, label, label, count)
	}
	return b.Build()
}

// learners fits one model per artifact learner kind on the training set.
func learners(t testing.TB, ds *data.Dataset) map[artifact.Kind]artifact.Scorer {
	t.Helper()
	binCol := ds.MustAttrIndex("label")
	numCol := ds.MustAttrIndex("label_num")
	feats := []int{0, 1, 2, 3}

	tCfg := tree.DefaultConfig()
	tCfg.MinLeaf = 10
	tCfg.Features = feats
	dt, err := tree.Grow(ds, binCol, tCfg)
	if err != nil {
		t.Fatalf("decision tree: %v", err)
	}
	rt, err := tree.GrowRegression(ds, numCol, tCfg)
	if err != nil {
		t.Fatalf("regression tree: %v", err)
	}
	nbCfg := bayes.DefaultConfig()
	nbCfg.Features = feats
	nb, err := bayes.Train(ds, binCol, nbCfg)
	if err != nil {
		t.Fatalf("naive bayes: %v", err)
	}
	lrCfg := logit.DefaultConfig()
	lrCfg.Exclude = []string{"label_num", roadnet.CrashCountAttr}
	lr, err := logit.Train(ds, binCol, lrCfg)
	if err != nil {
		t.Fatalf("logit: %v", err)
	}
	bagCfg := ensemble.DefaultBaggingConfig()
	bagCfg.Trees = 5
	bagCfg.Tree = tCfg
	bag, err := ensemble.TrainBagging(ds, binCol, bagCfg)
	if err != nil {
		t.Fatalf("bagging: %v", err)
	}
	adaCfg := ensemble.DefaultAdaBoostConfig()
	adaCfg.Rounds = 5
	adaCfg.Tree.MinLeaf = 10
	adaCfg.Tree.Features = feats
	ada, err := ensemble.TrainAdaBoost(ds, binCol, adaCfg)
	if err != nil {
		t.Fatalf("adaboost: %v", err)
	}
	zbCfg := zinb.DefaultConfig()
	zbCfg.Exclude = []string{"label", "label_num"}
	zb, err := zinb.Train(ds, ds.MustAttrIndex(roadnet.CrashCountAttr), zbCfg)
	if err != nil {
		t.Fatalf("zinb: %v", err)
	}
	m5Cfg := m5.DefaultConfig()
	m5Cfg.Tree = tCfg
	m5Cfg.Exclude = []string{"label", roadnet.CrashCountAttr}
	mt, err := m5.Train(ds, numCol, m5Cfg)
	if err != nil {
		t.Fatalf("m5: %v", err)
	}
	nnCfg := neural.DefaultConfig()
	nnCfg.Epochs = 10
	nnCfg.Exclude = []string{"label_num", roadnet.CrashCountAttr}
	nn, err := neural.Train(ds, binCol, nnCfg)
	if err != nil {
		t.Fatalf("neural: %v", err)
	}
	return map[artifact.Kind]artifact.Scorer{
		artifact.KindDecisionTree:   dt,
		artifact.KindRegressionTree: rt,
		artifact.KindNaiveBayes:     nb,
		artifact.KindLogistic:       lr,
		artifact.KindBagging:        bag,
		artifact.KindAdaBoost:       ada,
		artifact.KindZINB:           zb.Thresholded(2),
		artifact.KindM5:             mt,
		artifact.KindNeural:         nn,
	}
}

// probeRows builds a grid over the full input space: every combination of
// present/missing interval values, every trained nominal level plus
// missing, both binary values plus missing.
func probeRows() [][]float64 {
	var rows [][]float64
	for _, aadt := range []float64{300, 1800, 4400, data.Missing} {
		for _, age := range []float64{0.5, 12, 30, data.Missing} {
			for surface := -1; surface < 2; surface++ {
				sv := float64(surface)
				if surface < 0 {
					sv = data.Missing
				}
				for _, wet := range []float64{0, 1, data.Missing} {
					rows = append(rows, []float64{aadt, age, sv, wet, data.Missing, data.Missing, data.Missing})
				}
			}
		}
	}
	return rows
}

// transpose lays rows out as schema-ordered columns.
func transpose(rows [][]float64) [][]float64 {
	cols := make([][]float64, len(rows[0]))
	for j := range cols {
		cols[j] = make([]float64, len(rows))
		for i, row := range rows {
			cols[j][i] = row[j]
		}
	}
	return cols
}

func bitEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestCompiledBitIdenticalOnProbes pins the compile contract per learner
// kind: over the whole probe grid — missing values in every attribute
// kind included — the compiled scorer's PredictProb and ScoreColumns both
// reproduce the interpreted model's probability down to the float bits.
func TestCompiledBitIdenticalOnProbes(t *testing.T) {
	ds := trainDataset(600, 11)
	rows := probeRows()
	cols := transpose(rows)
	for kind, interp := range learners(t, ds) {
		cs, ok := compiled.Columnar(compiled.Compile(interp))
		if !ok {
			t.Fatalf("%s: compiled form has no columnar engine", kind)
		}
		out := make([]float64, len(rows))
		cs.ScoreColumns(cols, out)
		for i, row := range rows {
			want := interp.PredictProb(row)
			if got := cs.PredictProb(row); !bitEqual(got, want) {
				t.Errorf("%s: probe %d: compiled PredictProb %v, interpreted %v", kind, i, got, want)
			}
			if !bitEqual(out[i], want) {
				t.Errorf("%s: probe %d: ScoreColumns %v, interpreted %v", kind, i, out[i], want)
			}
		}
	}
}

// TestCompileDispatch pins the lowering table: every artifact learner kind
// compiles to a columnar scorer, compiling twice is a no-op, and a scorer
// the compiler does not recognize passes through unchanged (interpretation
// is the fallback, not an error).
func TestCompileDispatch(t *testing.T) {
	ds := trainDataset(600, 11)
	for kind, interp := range learners(t, ds) {
		c := compiled.Compile(interp)
		if _, ok := compiled.Columnar(c); !ok {
			t.Errorf("%s: Compile result is not a ColumnScorer", kind)
		}
		if again := compiled.Compile(c); again != c {
			t.Errorf("%s: compiling a compiled scorer must be a no-op", kind)
		}
	}
	plain := constScorer(0.25)
	if got := compiled.Compile(plain); got != plain {
		t.Errorf("unknown scorer was not passed through: %T", got)
	}
	if _, ok := compiled.Columnar(plain); ok {
		t.Error("plain scorer claims a columnar engine")
	}
}

// constScorer is an opaque learner the compiler has no lowering for.
type constScorer float64

func (c constScorer) PredictProb([]float64) float64 { return float64(c) }

// interpretedOnly hides any columnar engine, forcing artifact.BatchScorer
// onto the interpreted row-at-a-time path.
type interpretedOnly struct{ s artifact.Scorer }

func (w interpretedOnly) PredictProb(row []float64) float64 { return w.s.PredictProb(row) }

// scenarioScores streams n rows of scenario traffic through a batch
// scorer at the given chunk size and returns every score. Both calls in
// the differential build their own stream with identical options, so the
// two engines see identical rows.
func scenarioScores(t *testing.T, bs *artifact.BatchScorer, n, chunk int) []float64 {
	t.Helper()
	opt := roadnet.DefaultScenarioOptions(n)
	opt.ChunkSize = chunk
	opt.Seed = 77
	stream, err := roadnet.NewScenarioStream(opt)
	if err != nil {
		t.Fatal(err)
	}
	var out []float64
	total, err := bs.ScoreAll(stream, func(b *data.Batch, scores []float64) error {
		out = append(out, scores...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != n {
		t.Fatalf("scored %d rows, want %d", total, n)
	}
	return out
}

// TestCompiledStreamDifferential is the end-to-end equivalence sweep the
// tentpole demands: for every learner kind, live ScenarioStream traffic —
// wet/dry regimes, injected missing values, the unseen "concrete" surface
// level — scored through the interpreted row-at-a-time path and through
// the compiled columnar path must agree bit for bit at every chunk size
// from 1 to 2^20 (the last exceeding the row count, so one batch carries
// the whole stream).
func TestCompiledStreamDifferential(t *testing.T) {
	ds := trainDataset(600, 11)
	schema := ds.Attrs()
	const rows = 3000
	for kind, interp := range learners(t, ds) {
		// The zinb payload carries its own count boundary (t = 2 from
		// learners); keep the header threshold in agreement.
		thr := 8
		if kind == artifact.KindZINB {
			thr = 2
		}
		a, err := artifact.New("diff", kind, interp, schema, thr, 1, "label", nil)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		chunks := []int{1, 7, 64, 1024, 1 << 20}
		var want []float64
		for _, chunk := range chunks {
			mapperI, err := artifact.NewRowMapper(a)
			if err != nil {
				t.Fatal(err)
			}
			mapperC, err := artifact.NewRowMapper(a)
			if err != nil {
				t.Fatal(err)
			}
			interpBS := artifact.NewBatchScorerFor(interpretedOnly{interp}, mapperI)
			compiledBS := artifact.NewBatchScorerFor(interp, mapperC)
			got := scenarioScores(t, interpBS, rows, chunk)
			comp := scenarioScores(t, compiledBS, rows, chunk)
			for i := range got {
				if !bitEqual(got[i], comp[i]) {
					t.Fatalf("%s chunk=%d row %d: interpreted %v, compiled %v", kind, chunk, i, got[i], comp[i])
				}
			}
			if want == nil {
				want = append(want, got...)
			} else {
				for i := range got {
					if !bitEqual(got[i], want[i]) {
						t.Fatalf("%s chunk=%d row %d: score %v differs from chunk=1's %v", kind, chunk, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestCompiledBatchScorerErrorsMatch pins the mapping-error contract of
// the columnar path: a binary attribute carrying a non-0/1 value must be
// reported with the same row position the row-at-a-time path reports,
// including across chunks (absolute row numbers) and when a lower-indexed
// row in a later column is the first offender.
func TestCompiledBatchScorerErrorsMatch(t *testing.T) {
	ds := trainDataset(600, 11)
	interp := learners(t, ds)[artifact.KindDecisionTree]
	a, err := artifact.New("err", artifact.KindDecisionTree, interp, ds.Attrs(), 8, 1, "label", nil)
	if err != nil {
		t.Fatal(err)
	}
	// The feed declares the binary schema columns as interval so invalid
	// 0/1 values reach the scorer's own validation (the direct binding
	// accepts any non-nominal feed kind for a binary schema column).
	feed := data.NewBuilder("feed").
		Interval(roadnet.AttrAADT).
		Interval(roadnet.AttrWetCrash).
		Interval("label")
	feed.Row(100, 0, 0)
	feed.Row(200, 1, 0)
	feed.Row(300, 3, 0) // bad wet_crash at absolute row 2
	feed.Row(400, 0, 5) // bad label at row 3 — later, must not win
	fd := feed.Build()

	for _, chunk := range []int{1, 2, 100} {
		mapperI, _ := artifact.NewRowMapper(a)
		mapperC, _ := artifact.NewRowMapper(a)
		interpBS := artifact.NewBatchScorerFor(interpretedOnly{interp}, mapperI)
		compiledBS := artifact.NewBatchScorerFor(interp, mapperC)
		_, errI := interpBS.ScoreAll(fd.Stream(chunk), nil)
		_, errC := compiledBS.ScoreAll(fd.Stream(chunk), nil)
		if errI == nil || errC == nil {
			t.Fatalf("chunk=%d: bad binary value not rejected (interp %v, compiled %v)", chunk, errI, errC)
		}
		if errI.Error() != errC.Error() {
			t.Fatalf("chunk=%d: interpreted error %q, compiled error %q", chunk, errI, errC)
		}
	}
}

// TestCompileHotspotPassThrough pins the hotspot surface's compiled form:
// the flat per-cell array is its own columnar engine, so Compile passes it
// through unchanged and the columnar view scores bit-identically to the
// row path.
func TestCompileHotspotPassThrough(t *testing.T) {
	g, err := geo.NewGrid(0, 0, 12, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := &geo.Model{
		Grid:   g,
		Method: geo.MethodPersistence,
		Risk:   []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
	}
	c := compiled.Compile(m)
	if c != artifact.Scorer(m) {
		t.Fatalf("hotspot model was not passed through: %T", c)
	}
	cs, ok := compiled.Columnar(c)
	if !ok {
		t.Fatal("hotspot model is not a ColumnScorer")
	}
	xs := []float64{1, 5, 9, 50, math.NaN()}
	ys := []float64{1, 5, 9, 1, 1}
	out := make([]float64, len(xs))
	cs.ScoreColumns([][]float64{xs, ys}, out)
	for i := range xs {
		if want := m.PredictProb([]float64{xs[i], ys[i]}); out[i] != want {
			t.Fatalf("row %d: columnar %v vs row %v", i, out[i], want)
		}
	}
}
