// Package compiled is the compile step of the inference engine: it lowers
// every decoded learner into its cache-friendly evaluation form — flat
// array-encoded trees, precomputed naive-Bayes log-probability tables,
// ensembles fused over compiled members — behind one dispatch point. The
// contract is strict bit-identity: a compiled scorer returns exactly the
// probabilities of the interpreted learner it was lowered from, so the
// serving stack can compile unconditionally at artifact load and every
// golden table, probe grid and differential test pins both paths at once.
//
// The package sits between the model packages (which own their compiled
// forms, next to the state they lower) and the artifact/serving layers
// (which only see the Scorer and ColumnScorer interfaces).
package compiled

// Scorer is the row-at-a-time prediction interface, structurally identical
// to artifact.Scorer (declared here too so the artifact layer can depend
// on this package without a cycle).
type Scorer interface {
	PredictProb(row []float64) float64
}

// ColumnScorer is the columnar batch-evaluation interface the compiled
// forms add: ScoreColumns scores every row of a schema-ordered columnar
// block (one slice per attribute, each len(out) long) into out, with no
// allocation, safely under concurrency.
type ColumnScorer interface {
	Scorer
	ScoreColumns(cols [][]float64, out []float64)
}
