package data

import (
	"errors"
	"fmt"
)

// This file is the hand-rolled parser behind POST /score: it decodes a
// {"model":..., "segments":[{...}...]} request body in one left-to-right
// pass directly into a columnar Batch — no map[string]any, no reflection —
// using the same scanner and row-decoding machinery as the NDJSON feed
// reader, so the duplicate-key, unknown-attribute and value-kind rules are
// identical across the batch and streaming endpoints.
//
// The parser preserves the error precedence of the generic-decoder path it
// replaces: malformed JSON anywhere beats every semantic check, a missing
// model name beats segment problems, the empty-batch and batch-limit
// checks beat model resolution, model resolution beats per-segment errors.
// To keep that order without decoding everything twice, segment objects
// are decoded into the batch only once the model is known; a "segments"
// key arriving first is validated structurally, remembered by offset and
// re-scanned after the top-level object closes. A segment that is valid
// JSON but fails the schema (unknown attribute, duplicate key, wrong value
// kind) is remembered as a SegmentError while the remaining segments are
// walked structurally, so the reported segment is always the lowest bad
// one and the count checks still see the full batch size.

// ErrMissingModel reports a request without a (non-empty) model name.
var ErrMissingModel = errors.New("missing model name")

// ErrNoSegments reports a request whose segments array is absent, null or
// empty.
var ErrNoSegments = errors.New("no segments to score")

// BatchLimitError reports a segment count over the caller's limit.
type BatchLimitError struct {
	N, Limit int
}

func (e *BatchLimitError) Error() string {
	return fmt.Sprintf("batch of %d exceeds the %d-segment limit", e.N, e.Limit)
}

// SegmentError locates a semantic error (unknown attribute, duplicate key,
// wrong value kind) in one segment of an otherwise well-formed request.
// Segment is the zero-based position in the segments array.
type SegmentError struct {
	Segment int
	Err     error
}

func (e *SegmentError) Error() string { return fmt.Sprintf("segment %d: %v", e.Segment, e.Err) }

func (e *SegmentError) Unwrap() error { return e.Err }

// maxScoreDepth caps JSON nesting while structurally skipping unknown
// values, matching encoding/json's 10000-level decoder limit so a deeply
// nested body fails the same way on both paths.
const maxScoreDepth = 10000

// ScoreRequestParser owns the reusable decoding state for one model's
// /score requests: a schema-directed row decoder and the columnar batch
// segments decode into. A parser is single-use at a time (the batch is
// reset per request) but may be reused across sequential requests — level
// names discovered in one request stay interned for the next, exactly like
// a long-lived NDJSON reader. It must not be shared across goroutines.
type ScoreRequestParser struct {
	dec   *rowDecoder
	batch *Batch
}

// NewScoreRequestParser builds a parser decoding segments into the given
// schema (for scoring, the model's training schema). The schema is
// deep-copied; nominal level sets grow as unseen level names appear.
func NewScoreRequestParser(attrs []Attribute) *ScoreRequestParser {
	dec := newRowDecoder(attrs)
	return &ScoreRequestParser{dec: dec, batch: NewBatch(dec.attrs, 256)}
}

// InternedLevels returns the total nominal level names currently interned.
// Callers pooling parsers across requests use it to retire instances that
// adversarial traffic has bloated with unique level strings.
func (p *ScoreRequestParser) InternedLevels() int {
	n := 0
	for _, a := range p.dec.attrs {
		n += len(a.Levels)
	}
	return n
}

// ParseScoreRequest decodes one /score request body. resolve is called at
// most once, with the request's model name, and returns the parser for
// that model (or an error, e.g. unknown model, which is propagated
// verbatim once the empty-batch and limit checks have passed). On success
// the returned batch — owned by the resolved parser and valid until its
// next use — holds every segment as one row in schema order.
//
// Error precedence matches the generic-decoder path this replaces:
// malformed JSON (including unknown or duplicate top-level fields and
// trailing data after the object) beats ErrMissingModel, which beats
// ErrNoSegments, which beats BatchLimitError, which beats the resolve
// error, which beats the lowest SegmentError.
func ParseScoreRequest(body []byte, maxSegments int, resolve func(model string) (*ScoreRequestParser, error)) (string, *Batch, error) {
	s := lineScanner{buf: body}
	s.skipSpace()
	if !s.eat('{') {
		return "", nil, s.syntaxErr("'{'")
	}
	var (
		model                   string
		haveModel, haveSegments bool
		segStart                = -1 // deferred segments offset, -1 when decoded inline
		parser                  *ScoreRequestParser
		resolveErr              error
		resolved                bool
		count                   int
		segErr                  error
	)
	s.skipSpace()
	if !s.eat('}') {
		for {
			key, err := s.scanString()
			if err != nil {
				return model, nil, err
			}
			s.skipSpace()
			if !s.eat(':') {
				return model, nil, s.syntaxErr("':'")
			}
			switch {
			case string(key) == "model":
				if haveModel {
					return model, nil, errors.New(`duplicate field "model"`)
				}
				haveModel = true
				s.skipSpace()
				if s.pos < len(s.buf) && s.buf[s.pos] == 'n' {
					if err := s.scanLiteral("null"); err != nil {
						return model, nil, err
					}
				} else {
					raw, err := s.scanString()
					if err != nil {
						return model, nil, err
					}
					model = string(raw)
				}
			case string(key) == "segments":
				if haveSegments {
					return model, nil, errors.New(`duplicate field "segments"`)
				}
				haveSegments = true
				if haveModel && model != "" {
					parser, resolveErr = resolve(model)
					resolved = true
					p := parser
					if resolveErr != nil {
						p = nil // structural walk only: count for the limit checks
					}
					count, segErr, err = parseSegments(&s, p, maxSegments)
				} else {
					// Model not known yet: validate structurally now (so
					// malformed JSON keeps precedence over a missing model
					// name) and re-scan from here once it is.
					segStart = s.pos
					_, _, err = parseSegments(&s, nil, maxSegments)
				}
				if err != nil {
					return model, nil, err
				}
			default:
				return model, nil, fmt.Errorf("unknown field %q", key)
			}
			s.skipSpace()
			if s.eat(',') {
				s.skipSpace()
				continue
			}
			if s.eat('}') {
				break
			}
			return model, nil, s.syntaxErr("',' or '}'")
		}
	}
	s.skipSpace()
	if s.pos != len(s.buf) {
		return model, nil, fmt.Errorf("trailing data after request object")
	}
	if model == "" {
		return model, nil, ErrMissingModel
	}
	if segStart >= 0 {
		if !resolved {
			parser, resolveErr = resolve(model)
			resolved = true
		}
		p := parser
		if resolveErr != nil {
			p = nil
		}
		s2 := lineScanner{buf: body, pos: segStart}
		var err error
		count, segErr, err = parseSegments(&s2, p, maxSegments)
		if err != nil {
			return model, nil, err
		}
	}
	if count == 0 {
		return model, nil, ErrNoSegments
	}
	if count > maxSegments {
		return model, nil, &BatchLimitError{N: count, Limit: maxSegments}
	}
	if resolveErr != nil {
		return model, nil, resolveErr
	}
	if segErr != nil {
		return model, nil, segErr
	}
	return model, parser.batch, nil
}

// parseSegments walks the segments value. With a parser it decodes each
// object element into the parser's batch; with nil it validates JSON
// syntax only. count is the element count, segErr the first semantic error
// (lowest segment), err a syntax error that fails the whole request as
// malformed. A null value means no segments; a null element is an
// all-missing row, as the generic decoder scored it.
func parseSegments(s *lineScanner, p *ScoreRequestParser, maxSegments int) (count int, segErr error, err error) {
	s.skipSpace()
	if s.pos < len(s.buf) && s.buf[s.pos] == 'n' {
		return 0, nil, s.scanLiteral("null")
	}
	if !s.eat('[') {
		return 0, nil, s.syntaxErr("'['")
	}
	if p != nil {
		p.batch.Reset()
	}
	s.skipSpace()
	if s.eat(']') {
		return 0, nil, nil
	}
	for {
		s.skipSpace()
		typed := p != nil && segErr == nil && count < maxSegments
		switch {
		case s.pos < len(s.buf) && s.buf[s.pos] == 'n':
			if err := s.scanLiteral("null"); err != nil {
				return count, segErr, err
			}
			if typed {
				p.batch.AppendRow(p.dec.missingRow())
			}
		case s.pos >= len(s.buf) || s.buf[s.pos] != '{':
			// Any other element shape was a decode error — malformed — on
			// the generic path, never a per-segment error.
			return count, segErr, s.syntaxErr("'{'")
		case typed:
			start := s.pos
			if perr := p.dec.parseObject(s); perr != nil {
				// Rewind and re-walk structurally: valid JSON that failed
				// the schema is this segment's error and the remaining
				// segments still need counting; invalid JSON fails the
				// whole request as malformed.
				s.pos = start
				if err := skipValue(s); err != nil {
					return count, segErr, err
				}
				segErr = &SegmentError{Segment: count, Err: perr}
			} else {
				p.batch.AppendRow(p.dec.rowBuf)
			}
		default:
			if err := skipValue(s); err != nil {
				return count, segErr, err
			}
		}
		count++
		s.skipSpace()
		if s.eat(',') {
			continue
		}
		if s.eat(']') {
			return count, segErr, nil
		}
		return count, segErr, s.syntaxErr("',' or ']'")
	}
}

// skipValue consumes one JSON value of any shape, validating syntax only.
// It runs the same token scanners as the typed path (same string, number
// and literal grammar) so "malformed" means the same thing on both, and is
// iterative with an explicit container stack, so input nesting cannot
// overflow the goroutine stack; depth is capped at maxScoreDepth as
// encoding/json caps it.
func skipValue(s *lineScanner) error {
	var depthBuf [16]byte
	stack := depthBuf[:0] // one byte per open container: '{' or '['
	for {
		s.skipSpace()
		if s.pos >= len(s.buf) {
			return s.syntaxErr("a value")
		}
		closed := false // did this iteration complete a value?
		switch c := s.buf[s.pos]; {
		case c == '{':
			s.pos++
			if len(stack) >= maxScoreDepth {
				return fmt.Errorf("exceeded max depth of %d", maxScoreDepth)
			}
			stack = append(stack, '{')
			s.skipSpace()
			if s.eat('}') {
				stack = stack[:len(stack)-1]
				closed = true
			} else {
				if _, err := s.scanString(); err != nil {
					return err
				}
				s.skipSpace()
				if !s.eat(':') {
					return s.syntaxErr("':'")
				}
			}
		case c == '[':
			s.pos++
			if len(stack) >= maxScoreDepth {
				return fmt.Errorf("exceeded max depth of %d", maxScoreDepth)
			}
			stack = append(stack, '[')
			s.skipSpace()
			if s.eat(']') {
				stack = stack[:len(stack)-1]
				closed = true
			}
		case c == '"':
			if _, err := s.scanString(); err != nil {
				return err
			}
			closed = true
		case c == '-' || (c >= '0' && c <= '9'):
			if _, err := s.scanNumber(); err != nil {
				return err
			}
			closed = true
		case c == 't':
			if err := s.scanLiteral("true"); err != nil {
				return err
			}
			closed = true
		case c == 'f':
			if err := s.scanLiteral("false"); err != nil {
				return err
			}
			closed = true
		case c == 'n':
			if err := s.scanLiteral("null"); err != nil {
				return err
			}
			closed = true
		default:
			return s.syntaxErr("a value")
		}
		if !closed {
			continue
		}
		// A value just finished: consume separators and closers until the
		// next value is due or every container is closed.
		for {
			if len(stack) == 0 {
				return nil
			}
			s.skipSpace()
			if stack[len(stack)-1] == '{' {
				if s.eat(',') {
					s.skipSpace()
					if _, err := s.scanString(); err != nil {
						return err
					}
					s.skipSpace()
					if !s.eat(':') {
						return s.syntaxErr("':'")
					}
					break
				}
				if s.eat('}') {
					stack = stack[:len(stack)-1]
					continue
				}
				return s.syntaxErr("',' or '}'")
			}
			if s.eat(',') {
				break
			}
			if s.eat(']') {
				stack = stack[:len(stack)-1]
				continue
			}
			return s.syntaxErr("',' or ']'")
		}
	}
}
