package data

import (
	"fmt"
	"math"

	"roadcrash/internal/rng"
)

// Split partitions the dataset into train and validation subsets with the
// given training fraction, using the paper's train/validation method
// ("the training/validation method was used because correlations between
// the training and validation plots ... are good indicators of the raw
// model quality"). frac must lie in (0, 1).
func (d *Dataset) Split(r *rng.Source, frac float64) (train, valid *Dataset, err error) {
	if frac <= 0 || frac >= 1 {
		return nil, nil, fmt.Errorf("data: split fraction %v outside (0,1)", frac)
	}
	perm := r.Perm(d.n)
	cut := int(math.Round(frac * float64(d.n)))
	if cut == 0 || cut == d.n {
		return nil, nil, fmt.Errorf("data: split fraction %v leaves an empty side for n=%d", frac, d.n)
	}
	return d.Subset(d.name+"/train", perm[:cut]), d.Subset(d.name+"/valid", perm[cut:]), nil
}

// StratifiedSplit splits while preserving the class mix of binary column
// target in both sides — important for the paper's extremely unbalanced
// CP-32 and CP-64 datasets, where a plain split can lose the whole minority
// class from the validation side.
func (d *Dataset) StratifiedSplit(r *rng.Source, frac float64, target int) (train, valid *Dataset, err error) {
	if frac <= 0 || frac >= 1 {
		return nil, nil, fmt.Errorf("data: split fraction %v outside (0,1)", frac)
	}
	if target < 0 || target >= len(d.attrs) {
		return nil, nil, fmt.Errorf("data: target column %d out of range", target)
	}
	var pos, neg []int
	for i, v := range d.cols[target] {
		if v == 1 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	var trainIdx, validIdx []int
	for _, class := range [][]int{neg, pos} {
		if len(class) == 0 {
			continue
		}
		r.Shuffle(len(class), func(i, j int) { class[i], class[j] = class[j], class[i] })
		cut := int(math.Round(frac * float64(len(class))))
		// Keep at least one instance of a non-empty class on each side when
		// the class has two or more members.
		if len(class) >= 2 {
			if cut == 0 {
				cut = 1
			}
			if cut == len(class) {
				cut = len(class) - 1
			}
		}
		trainIdx = append(trainIdx, class[:cut]...)
		validIdx = append(validIdx, class[cut:]...)
	}
	if len(trainIdx) == 0 || len(validIdx) == 0 {
		return nil, nil, fmt.Errorf("data: stratified split left an empty side")
	}
	r.Shuffle(len(trainIdx), func(i, j int) { trainIdx[i], trainIdx[j] = trainIdx[j], trainIdx[i] })
	r.Shuffle(len(validIdx), func(i, j int) { validIdx[i], validIdx[j] = validIdx[j], validIdx[i] })
	return d.Subset(d.name+"/train", trainIdx), d.Subset(d.name+"/valid", validIdx), nil
}

// KFold returns k (train, valid) index pairs covering the dataset, after a
// shuffle. Used for the paper's "10 times cross-validation" on the
// supporting models. It returns an error when k < 2 or k > n.
func (d *Dataset) KFold(r *rng.Source, k int) ([][2][]int, error) {
	if k < 2 || k > d.n {
		return nil, fmt.Errorf("data: k-fold with k=%d on %d instances", k, d.n)
	}
	perm := r.Perm(d.n)
	folds := make([][]int, k)
	for i, p := range perm {
		folds[i%k] = append(folds[i%k], p)
	}
	out := make([][2][]int, k)
	for f := 0; f < k; f++ {
		var train []int
		for g := 0; g < k; g++ {
			if g != f {
				train = append(train, folds[g]...)
			}
		}
		out[f] = [2][]int{train, folds[f]}
	}
	return out, nil
}

// Undersample balances the binary target by sampling the majority class
// down to ratio × (minority count). The paper discusses this pre-processing
// remedy for unbalanced classes and rejects it in favour of MCPV assessment;
// the ablation bench compares both. ratio must be >= 1.
func (d *Dataset) Undersample(r *rng.Source, target int, ratio float64) (*Dataset, error) {
	if ratio < 1 {
		return nil, fmt.Errorf("data: undersample ratio %v < 1", ratio)
	}
	if target < 0 || target >= len(d.attrs) {
		return nil, fmt.Errorf("data: target column %d out of range", target)
	}
	var pos, neg []int
	for i, v := range d.cols[target] {
		if v == 1 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	minor, major := pos, neg
	if len(pos) > len(neg) {
		minor, major = neg, pos
	}
	if len(minor) == 0 {
		return nil, fmt.Errorf("data: undersample with a single class")
	}
	keep := int(math.Round(ratio * float64(len(minor))))
	if keep > len(major) {
		keep = len(major)
	}
	r.Shuffle(len(major), func(i, j int) { major[i], major[j] = major[j], major[i] })
	idx := append(append([]int(nil), minor...), major[:keep]...)
	r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	return d.Subset(d.name+"/balanced", idx), nil
}

// CountThresholdTarget derives the paper's crash-proneness target: a binary
// column that is 1 when countAttr > threshold ("Crash prone 2, for example,
// compares ... roads with 0, 1 or 2 crashes as the non-crash prone road
// segments, roads with 3 crashes and above as the crash prone"). Missing
// counts produce missing targets.
func (d *Dataset) CountThresholdTarget(countAttr string, threshold int, targetName string) (*Dataset, error) {
	j, err := d.AttrIndex(countAttr)
	if err != nil {
		return nil, err
	}
	col := make([]float64, d.n)
	for i, v := range d.cols[j] {
		switch {
		case IsMissing(v):
			col[i] = Missing
		case v > float64(threshold):
			col[i] = 1
		default:
			col[i] = 0
		}
	}
	return d.AppendColumn(Attribute{Name: targetName, Kind: Binary}, col)
}

// Standardize returns a dataset whose interval columns are rescaled to zero
// mean and unit variance (missing values preserved), plus the per-column
// means and standard deviations used. Constant columns keep sd=1 so the
// transform stays invertible. Nominal and binary columns pass through.
func (d *Dataset) Standardize() (*Dataset, []float64, []float64) {
	means := make([]float64, len(d.attrs))
	sds := make([]float64, len(d.attrs))
	cols := make([][]float64, len(d.cols))
	for j, a := range d.attrs {
		if a.Kind != Interval {
			means[j], sds[j] = 0, 1
			cols[j] = d.cols[j]
			continue
		}
		var sum, sumSq float64
		n := 0
		for _, v := range d.cols[j] {
			if IsMissing(v) {
				continue
			}
			sum += v
			sumSq += v * v
			n++
		}
		if n == 0 {
			means[j], sds[j] = 0, 1
			cols[j] = d.cols[j]
			continue
		}
		mean := sum / float64(n)
		variance := sumSq/float64(n) - mean*mean
		sd := math.Sqrt(math.Max(variance, 0))
		if sd == 0 {
			sd = 1
		}
		means[j], sds[j] = mean, sd
		col := make([]float64, d.n)
		for i, v := range d.cols[j] {
			if IsMissing(v) {
				col[i] = Missing
			} else {
				col[i] = (v - mean) / sd
			}
		}
		cols[j] = col
	}
	return &Dataset{name: d.name + "/std", attrs: d.attrs, cols: cols, n: d.n}, means, sds
}

// ClassCounts returns (negatives, positives) of a binary column, ignoring
// missing targets.
func (d *Dataset) ClassCounts(target int) (neg, pos int) {
	for _, v := range d.cols[target] {
		switch v {
		case 0:
			neg++
		case 1:
			pos++
		}
	}
	return neg, pos
}

// Bootstrap returns a resample of size n with replacement.
func (d *Dataset) Bootstrap(r *rng.Source, n int) *Dataset {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = r.Intn(d.n)
	}
	return d.Subset(d.name+"/boot", idx)
}
