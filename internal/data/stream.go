package data

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// This file is the out-of-core half of the dataset engine: fixed-capacity
// columnar row batches, pull-style batch readers over CSV and NDJSON
// sources, and the matching batch writers. Readers hand out one reusable
// batch, so a full pass over a million-row feed allocates what a single
// chunk needs — ingestion and scoring memory is bounded by the chunk size,
// not the dataset size.

// DefaultChunkSize is the batch capacity used when a caller passes a
// non-positive chunk size. It is large enough to amortize per-batch
// overhead and small enough that a fully populated batch of the study
// schema stays well under a megabyte.
const DefaultChunkSize = 4096

// Batch is a fixed-capacity columnar slab of rows sharing one attribute
// schema — the unit of work of the streaming pipeline. Producers reuse a
// batch across chunks (Reset keeps the column capacity), so consumers must
// finish with a batch before asking its reader for the next one.
type Batch struct {
	attrs []Attribute
	cols  [][]float64
	n     int
}

// NewBatch returns an empty batch over attrs with the given row capacity
// preallocated per column. The attrs slice is shared, not copied: readers
// that discover nominal levels incrementally update the shared schema and
// every batch sees the growth.
func NewBatch(attrs []Attribute, capacity int) *Batch {
	if capacity <= 0 {
		capacity = DefaultChunkSize
	}
	cols := make([][]float64, len(attrs))
	for j := range cols {
		cols[j] = make([]float64, 0, capacity)
	}
	return &Batch{attrs: attrs, cols: cols}
}

// Len returns the number of rows currently in the batch.
func (b *Batch) Len() int { return b.n }

// Attrs returns the batch schema. Nominal level sets may grow between
// batches of one reader; they never shrink or reorder.
func (b *Batch) Attrs() []Attribute { return b.attrs }

// Col returns column j, length Len. The caller must not modify it.
func (b *Batch) Col(j int) []float64 { return b.cols[j] }

// At returns the value of attribute j for batch row i.
func (b *Batch) At(i, j int) float64 { return b.cols[j][i] }

// Reset empties the batch, keeping the allocated column capacity for the
// next chunk.
func (b *Batch) Reset() {
	for j := range b.cols {
		b.cols[j] = b.cols[j][:0]
	}
	b.n = 0
}

// AppendRow appends one row given in schema order. Unlike Builder.Row it
// does not validate cell kinds — batch producers own their values and the
// check would dominate the hot loop.
func (b *Batch) AppendRow(values []float64) {
	if len(values) != len(b.attrs) {
		panic(fmt.Sprintf("data: batch row has %d values, schema has %d attributes", len(values), len(b.attrs)))
	}
	for j, v := range values {
		b.cols[j] = append(b.cols[j], v)
	}
	b.n++
}

// BatchReader is the pull iterator behind out-of-core ingestion: Next
// returns batches until io.EOF. The returned batch is owned by the reader
// and only valid until the following Next call.
type BatchReader interface {
	// Next returns the next chunk of rows, or io.EOF when the source is
	// exhausted. Any other error aborts the stream.
	Next() (*Batch, error)
	// Attrs returns the reader's schema. Nominal level sets are discovered
	// incrementally and may grow between Next calls (append-only, so level
	// indices already handed out stay valid).
	Attrs() []Attribute
}

// ReadAll drains a batch reader into an in-memory dataset — the bridge
// from the streaming layer back to the materialized API the modeling code
// uses. It consumes the reader.
func ReadAll(name string, br BatchReader) (*Dataset, error) {
	var cols [][]float64
	n := 0
	for {
		b, err := br.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if cols == nil {
			cols = make([][]float64, len(b.Attrs()))
		}
		for j := range cols {
			cols[j] = append(cols[j], b.Col(j)...)
		}
		n += b.Len()
	}
	attrs := br.Attrs()
	copied := make([]Attribute, len(attrs))
	for i, a := range attrs {
		copied[i] = Attribute{Name: a.Name, Kind: a.Kind, Levels: append([]string(nil), a.Levels...)}
	}
	if cols == nil {
		cols = make([][]float64, len(copied))
	}
	return &Dataset{name: name, attrs: copied, cols: cols, n: n}, nil
}

// CSVBatchReader streams a dataset CSV (the WriteCSV layout, documented in
// docs/DATA.md) as columnar batches. Nominal levels are interned in data
// order exactly as ReadCSV does — ReadCSV itself is ReadAll over this
// reader — so a chunked pass and an in-memory pass see identical values.
type CSVBatchReader struct {
	cr         *csv.Reader
	attrs      []Attribute
	levelIndex []map[string]int
	batch      *Batch
	row        int // rows parsed so far, for error positions
	done       bool
}

// NewCSVBatchReader parses the header and prepares a reader emitting
// batches of up to chunk rows (chunk <= 0 selects DefaultChunkSize).
func NewCSVBatchReader(r io.Reader, chunk int) (*CSVBatchReader, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("data: reading CSV header: %w", err)
	}
	if len(header) > 0 {
		header[0] = strings.TrimPrefix(header[0], "\ufeff")
	}
	attrs := make([]Attribute, len(header))
	levelIndex := make([]map[string]int, len(header))
	for j, h := range header {
		attrName, kind := h, "interval"
		if cut := strings.LastIndex(h, ":"); cut >= 0 {
			attrName, kind = h[:cut], strings.TrimSpace(h[cut+1:])
		}
		attrs[j].Name = strings.TrimSpace(attrName)
		k, err := KindFromString(kind)
		if err != nil {
			return nil, fmt.Errorf("data: column %q has unknown kind %q", attrs[j].Name, kind)
		}
		attrs[j].Kind = k
		if k == Nominal {
			levelIndex[j] = make(map[string]int)
		}
	}
	return &CSVBatchReader{
		cr:         cr,
		attrs:      attrs,
		levelIndex: levelIndex,
		batch:      NewBatch(attrs, chunk),
	}, nil
}

// Attrs returns the schema parsed from the header. Nominal level sets grow
// as levels are discovered in the data.
func (r *CSVBatchReader) Attrs() []Attribute { return r.attrs }

// Next fills the reader's batch with up to its chunk size of rows.
func (r *CSVBatchReader) Next() (*Batch, error) {
	if r.done {
		return nil, io.EOF
	}
	b := r.batch
	b.Reset()
	for len(b.cols) == 0 || b.n < cap(b.cols[0]) {
		record, err := r.cr.Read()
		if err == io.EOF {
			r.done = true
			break
		}
		if err != nil {
			return nil, fmt.Errorf("data: reading CSV row %d: %w", r.row, err)
		}
		if len(record) != len(r.attrs) {
			return nil, fmt.Errorf("data: CSV row %d has %d fields, header has %d", r.row, len(record), len(r.attrs))
		}
		for j, cell := range record {
			v, err := r.parseCell(j, cell)
			if err != nil {
				return nil, err
			}
			b.cols[j] = append(b.cols[j], v)
		}
		b.n++
		r.row++
		if len(b.cols) == 0 {
			// A zero-column schema has no row storage; without this guard
			// the row loop above could not terminate on capacity.
			break
		}
	}
	if b.n == 0 {
		return nil, io.EOF
	}
	return b, nil
}

// parseCell converts one CSV cell to its column value, interning new
// nominal levels.
func (r *CSVBatchReader) parseCell(j int, cell string) (float64, error) {
	cell = strings.TrimSpace(cell)
	if cell == "" || cell == "?" {
		return Missing, nil
	}
	switch r.attrs[j].Kind {
	case Nominal:
		idx, ok := r.levelIndex[j][cell]
		if !ok {
			idx = len(r.attrs[j].Levels)
			r.attrs[j].Levels = append(r.attrs[j].Levels, cell)
			r.levelIndex[j][cell] = idx
		}
		return float64(idx), nil
	case Binary:
		switch strings.ToLower(cell) {
		case "0", "false", "no":
			return 0, nil
		case "1", "true", "yes":
			return 1, nil
		default:
			return 0, fmt.Errorf("data: CSV row %d: binary column %q got %q", r.row, r.attrs[j].Name, cell)
		}
	default:
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return 0, fmt.Errorf("data: CSV row %d: interval column %q got %q", r.row, r.attrs[j].Name, cell)
		}
		return v, nil
	}
}

// maxNDJSONLine caps one NDJSON line (1 MiB) so a malformed feed cannot
// buffer unboundedly inside the line scanner.
const maxNDJSONLine = 1 << 20

// NDJSONBatchReader streams newline-delimited JSON rows — one object per
// line mapping attribute name -> value — as columnar batches laid out in a
// caller-supplied schema (for scoring, the model artifact's training
// schema). Value conventions per kind: numbers for interval attributes
// (or a parsable numeric string), level names for nominal attributes
// (unseen names are interned as new levels), and 0/1, true/false or the
// strings "0"/"1"/"true"/"false"/"yes"/"no" for binary attributes.
// Missing values are null or simply omitted keys; unknown keys are
// rejected so client typos fail loudly, and so is a key repeated within
// one row — a generic JSON decode would silently keep the last value,
// scoring {"aadt":1,"aadt":9} as 9 with no error anywhere. Blank lines
// are skipped. Rows are parsed by the hand-rolled scanner in ndjson.go,
// which allocates nothing per row in steady state.
type NDJSONBatchReader struct {
	sc    *bufio.Scanner
	dec   *rowDecoder
	batch *Batch
	row   int
	done  bool
}

// NewNDJSONBatchReader prepares a reader over r emitting batches of up to
// chunk rows (chunk <= 0 selects DefaultChunkSize) in the given schema.
// The schema is deep-copied; nominal level sets grow as new level names
// appear in the data.
func NewNDJSONBatchReader(r io.Reader, attrs []Attribute, chunk int) *NDJSONBatchReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxNDJSONLine)
	dec := newRowDecoder(attrs)
	return &NDJSONBatchReader{
		sc:    sc,
		dec:   dec,
		batch: NewBatch(dec.attrs, chunk),
	}
}

// Attrs returns the reader's schema (the copy it owns).
func (r *NDJSONBatchReader) Attrs() []Attribute { return r.dec.attrs }

// Next fills the reader's batch with up to its chunk size of rows.
func (r *NDJSONBatchReader) Next() (*Batch, error) {
	if r.done {
		return nil, io.EOF
	}
	b := r.batch
	b.Reset()
	for len(b.cols) == 0 || b.n < cap(b.cols[0]) {
		line, err := r.nextLine()
		if err == io.EOF {
			r.done = true
			break
		}
		if err != nil {
			return nil, err
		}
		if err := r.parseLine(line); err != nil {
			return nil, err
		}
		b.AppendRow(r.dec.rowBuf)
		r.row++
		if len(b.cols) == 0 {
			break
		}
	}
	if b.n == 0 {
		return nil, io.EOF
	}
	return b, nil
}

// nextLine returns the next non-blank line or io.EOF.
func (r *NDJSONBatchReader) nextLine() ([]byte, error) {
	for r.sc.Scan() {
		line := bytes.TrimSpace(r.sc.Bytes())
		if len(line) == 0 {
			continue
		}
		return line, nil
	}
	if err := r.sc.Err(); err != nil {
		return nil, fmt.Errorf("data: reading NDJSON row %d: %w", r.row, err)
	}
	return nil, io.EOF
}

// ReadNDJSON materializes an NDJSON stream in the given schema — the
// in-memory convenience over NewNDJSONBatchReader + ReadAll.
func ReadNDJSON(name string, r io.Reader, attrs []Attribute) (*Dataset, error) {
	return ReadAll(name, NewNDJSONBatchReader(r, attrs, DefaultChunkSize))
}

// datasetStream adapts an in-memory dataset to the BatchReader interface
// by slicing its columns chunk by chunk — zero-copy, so streaming
// consumers can be driven from materialized data in tests and writers.
type datasetStream struct {
	d     *Dataset
	batch Batch
	chunk int
	at    int
}

// Stream returns a BatchReader over the dataset's rows in order, emitting
// chunks of up to chunk rows (chunk <= 0 selects DefaultChunkSize). The
// batches alias the dataset's columns; they must be treated as read-only.
func (d *Dataset) Stream(chunk int) BatchReader {
	if chunk <= 0 {
		chunk = DefaultChunkSize
	}
	return &datasetStream{d: d, chunk: chunk, batch: Batch{attrs: d.attrs, cols: make([][]float64, len(d.cols))}}
}

func (s *datasetStream) Attrs() []Attribute { return s.d.attrs }

func (s *datasetStream) Next() (*Batch, error) {
	if s.at >= s.d.n {
		return nil, io.EOF
	}
	hi := s.at + s.chunk
	if hi > s.d.n {
		hi = s.d.n
	}
	for j := range s.batch.cols {
		s.batch.cols[j] = s.d.cols[j][s.at:hi]
	}
	s.batch.n = hi - s.at
	s.at = hi
	return &s.batch, nil
}

// BatchWriter is the sink half of the streaming pipeline, implemented by
// the CSV and NDJSON batch writers.
type BatchWriter interface {
	// WriteBatch appends every row of the batch.
	WriteBatch(*Batch) error
	// Flush commits buffered output and reports deferred write errors.
	Flush() error
}

// Copy drains a batch reader into a batch writer and flushes it — the one
// pump loop behind every stream-to-stream transfer.
func Copy(dst BatchWriter, src BatchReader) error {
	for {
		b, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := dst.WriteBatch(b); err != nil {
			return err
		}
	}
	return dst.Flush()
}

// CSVBatchWriter streams batches to the dataset CSV layout. The header is
// written on the first batch (or by Flush for an empty stream), so nominal
// level discovery in upstream readers has settled by the time any level
// name is rendered.
type CSVBatchWriter struct {
	cw     *csv.Writer
	attrs  []Attribute
	record []string
	wrote  bool
	row    int
}

// NewCSVBatchWriter prepares a writer emitting the given schema to w.
func NewCSVBatchWriter(w io.Writer, attrs []Attribute) *CSVBatchWriter {
	return &CSVBatchWriter{cw: csv.NewWriter(w), attrs: attrs, record: make([]string, len(attrs))}
}

func (w *CSVBatchWriter) header() error {
	for j, a := range w.attrs {
		w.record[j] = a.Name + ":" + a.Kind.String()
	}
	if err := w.cw.Write(w.record); err != nil {
		return fmt.Errorf("data: writing CSV header: %w", err)
	}
	w.wrote = true
	return nil
}

// WriteBatch appends every row of the batch. The batch schema must be the
// writer's schema (same backing attributes; level growth is fine).
func (w *CSVBatchWriter) WriteBatch(b *Batch) error {
	if !w.wrote {
		if err := w.header(); err != nil {
			return err
		}
	}
	for i := 0; i < b.Len(); i++ {
		for j, a := range w.attrs {
			v := b.At(i, j)
			switch {
			case IsMissing(v):
				w.record[j] = "?"
			case a.Kind == Nominal:
				w.record[j] = b.Attrs()[j].Levels[int(v)]
			case a.Kind == Binary:
				w.record[j] = strconv.Itoa(int(v))
			default:
				w.record[j] = strconv.FormatFloat(v, 'g', -1, 64)
			}
		}
		if err := w.cw.Write(w.record); err != nil {
			return fmt.Errorf("data: writing CSV row %d: %w", w.row, err)
		}
		w.row++
	}
	return nil
}

// Flush writes the header if nothing has been written yet, flushes the
// underlying CSV writer and reports any deferred write error.
func (w *CSVBatchWriter) Flush() error {
	if !w.wrote {
		if err := w.header(); err != nil {
			return err
		}
	}
	w.cw.Flush()
	return w.cw.Error()
}

// NDJSONBatchWriter streams batches as newline-delimited JSON objects in
// the row format NDJSONBatchReader parses: attribute name -> value with
// nominal values as level names, binary values as true/false and missing
// values omitted.
type NDJSONBatchWriter struct {
	w     *bufio.Writer
	attrs []Attribute
	buf   []byte
}

// NewNDJSONBatchWriter prepares a writer emitting the given schema to w.
func NewNDJSONBatchWriter(w io.Writer, attrs []Attribute) *NDJSONBatchWriter {
	return &NDJSONBatchWriter{w: bufio.NewWriter(w), attrs: attrs}
}

// WriteBatch appends one NDJSON line per batch row.
func (w *NDJSONBatchWriter) WriteBatch(b *Batch) error {
	for i := 0; i < b.Len(); i++ {
		w.buf = w.buf[:0]
		w.buf = append(w.buf, '{')
		first := true
		for j, a := range w.attrs {
			v := b.At(i, j)
			if IsMissing(v) {
				continue
			}
			if !first {
				w.buf = append(w.buf, ',')
			}
			first = false
			w.buf = AppendJSONString(w.buf, a.Name)
			w.buf = append(w.buf, ':')
			switch {
			case a.Kind == Nominal:
				w.buf = AppendJSONString(w.buf, b.Attrs()[j].Levels[int(v)])
			case a.Kind == Binary:
				if v == 1 {
					w.buf = append(w.buf, "true"...)
				} else {
					w.buf = append(w.buf, "false"...)
				}
			case math.IsInf(v, 0):
				// JSON has no Inf literal; the reader parses numeric strings.
				w.buf = strconv.AppendQuote(w.buf, strconv.FormatFloat(v, 'g', -1, 64))
			default:
				w.buf = strconv.AppendFloat(w.buf, v, 'g', -1, 64)
			}
		}
		w.buf = append(w.buf, '}', '\n')
		if _, err := w.w.Write(w.buf); err != nil {
			return fmt.Errorf("data: writing NDJSON row: %w", err)
		}
	}
	return nil
}

// Flush flushes buffered lines to the underlying writer.
func (w *NDJSONBatchWriter) Flush() error {
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("data: writing NDJSON: %w", err)
	}
	return nil
}

// WriteNDJSON serializes the dataset in the NDJSON row format.
func (d *Dataset) WriteNDJSON(w io.Writer) error {
	return Copy(NewNDJSONBatchWriter(w, d.attrs), d.Stream(DefaultChunkSize))
}
