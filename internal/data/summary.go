package data

import (
	"fmt"
	"strings"

	"roadcrash/internal/stats"
)

// AttrSummary captures the per-attribute screening statistics the study's
// pre-processing phase collects ("all variables underwent the standard
// pre-processing and distribution testing by examining the relevance of
// missing values and relevance of distribution skew").
type AttrSummary struct {
	Attribute Attribute
	N         int // non-missing count
	Missing   int
	Mean      float64
	StdDev    float64
	Min       float64
	Max       float64
	Skewness  float64
	// LevelCounts holds per-level instance counts for nominal attributes.
	LevelCounts []int
}

// Summarize computes summaries for every attribute.
func (d *Dataset) Summarize() []AttrSummary {
	out := make([]AttrSummary, len(d.attrs))
	for j, a := range d.attrs {
		s := AttrSummary{Attribute: a, Missing: d.MissingCount(j)}
		var vals []float64
		for _, v := range d.cols[j] {
			if !IsMissing(v) {
				vals = append(vals, v)
			}
		}
		s.N = len(vals)
		if a.Kind == Nominal {
			s.LevelCounts = make([]int, len(a.Levels))
			for _, v := range vals {
				s.LevelCounts[int(v)]++
			}
		}
		if len(vals) > 0 {
			s.Mean = stats.Mean(vals)
			s.StdDev = stats.StdDev(vals)
			s.Min, s.Max = stats.MinMax(vals)
			s.Skewness = stats.Skewness(vals)
		}
		out[j] = s
	}
	return out
}

// String renders the dataset schema and summary statistics as a fixed-width
// report.
func (d *Dataset) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dataset %q: %d instances, %d attributes\n", d.name, d.n, len(d.attrs))
	for _, s := range d.Summarize() {
		switch s.Attribute.Kind {
		case Nominal:
			fmt.Fprintf(&b, "  %-24s %-8s n=%-6d miss=%-5d levels=%d\n",
				s.Attribute.Name, s.Attribute.Kind, s.N, s.Missing, len(s.Attribute.Levels))
		default:
			fmt.Fprintf(&b, "  %-24s %-8s n=%-6d miss=%-5d mean=%-10.4g sd=%-10.4g range=[%.4g, %.4g] skew=%.3g\n",
				s.Attribute.Name, s.Attribute.Kind, s.N, s.Missing, s.Mean, s.StdDev, s.Min, s.Max, s.Skewness)
		}
	}
	return b.String()
}
