package data

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// scoreAttrs is the test schema shared with the NDJSON reader tests: one
// attribute of each kind.
func scoreAttrs() []Attribute {
	return []Attribute{
		{Name: "x", Kind: Interval},
		{Name: "s", Kind: Nominal, Levels: []string{"a", "b"}},
		{Name: "flag", Kind: Binary},
	}
}

// resolveTo returns a resolve callback handing out p for any model name
// and counting its calls.
func resolveTo(p *ScoreRequestParser, calls *int) func(string) (*ScoreRequestParser, error) {
	return func(string) (*ScoreRequestParser, error) {
		*calls++
		return p, nil
	}
}

func TestParseScoreRequestHappy(t *testing.T) {
	p := NewScoreRequestParser(scoreAttrs())
	calls := 0
	body := `{"model":"m","segments":[{"x":1.5,"s":"b","flag":true},{"x":"2.5"},{"flag":"no"}]}`
	model, b, err := ParseScoreRequest([]byte(body), 100, resolveTo(p, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if model != "m" || calls != 1 {
		t.Fatalf("model=%q calls=%d", model, calls)
	}
	if b.Len() != 3 {
		t.Fatalf("rows = %d", b.Len())
	}
	want := [][]float64{{1.5, 1, 1}, {2.5, Missing, Missing}, {Missing, Missing, 0}}
	for i, row := range want {
		for j, v := range row {
			got := b.At(i, j)
			if IsMissing(v) != IsMissing(got) || (!IsMissing(v) && got != v) {
				t.Errorf("row %d col %d: got %v, want %v", i, j, got, v)
			}
		}
	}
}

// TestParseScoreRequestModelLast pins the deferred-segments path: a
// request with segments before model decodes to the same batch as the
// model-first form, and resolve still runs exactly once.
func TestParseScoreRequestModelLast(t *testing.T) {
	first := `{"model":"m","segments":[{"x":9,"s":"a"},null,{"flag":1}]}`
	last := `{"segments":[{"x":9,"s":"a"},null,{"flag":1}],"model":"m"}`
	rows := func(body string) [][]float64 {
		p := NewScoreRequestParser(scoreAttrs())
		calls := 0
		model, b, err := ParseScoreRequest([]byte(body), 100, resolveTo(p, &calls))
		if err != nil || model != "m" || calls != 1 {
			t.Fatalf("%s: model=%q calls=%d err=%v", body, model, calls, err)
		}
		out := make([][]float64, b.Len())
		for i := range out {
			out[i] = make([]float64, len(b.Attrs()))
			for j := range out[i] {
				out[i][j] = b.At(i, j)
			}
		}
		return out
	}
	a, z := rows(first), rows(last)
	if len(a) != 3 || len(z) != 3 {
		t.Fatalf("rows: %d and %d, want 3", len(a), len(z))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != z[i][j] && !(IsMissing(a[i][j]) && IsMissing(z[i][j])) {
				t.Errorf("row %d col %d: model-first %v, model-last %v", i, j, a[i][j], z[i][j])
			}
		}
	}
}

// TestParseScoreRequestPrecedence pins the error ordering the generic
// decoder path established: malformed JSON > missing model > no segments
// > batch limit > resolve error > lowest segment error.
func TestParseScoreRequestPrecedence(t *testing.T) {
	boom := errors.New("unknown model")
	failResolve := func(string) (*ScoreRequestParser, error) { return nil, boom }
	okResolve := func(string) (*ScoreRequestParser, error) { return NewScoreRequestParser(scoreAttrs()), nil }

	t.Run("malformed beats missing model", func(t *testing.T) {
		_, _, err := ParseScoreRequest([]byte(`{"segments":[{"x":}]}`), 10, okResolve)
		if err == nil || errors.Is(err, ErrMissingModel) {
			t.Fatalf("err = %v, want a syntax error", err)
		}
	})
	t.Run("missing model beats segment error", func(t *testing.T) {
		_, _, err := ParseScoreRequest([]byte(`{"segments":[{"nope":1}]}`), 10, okResolve)
		if !errors.Is(err, ErrMissingModel) {
			t.Fatalf("err = %v, want ErrMissingModel", err)
		}
	})
	t.Run("no segments beats resolve error", func(t *testing.T) {
		for _, body := range []string{
			`{"model":"ghost","segments":[]}`,
			`{"model":"ghost","segments":null}`,
			`{"model":"ghost"}`,
		} {
			_, _, err := ParseScoreRequest([]byte(body), 10, failResolve)
			if !errors.Is(err, ErrNoSegments) {
				t.Fatalf("%s: err = %v, want ErrNoSegments", body, err)
			}
		}
	})
	t.Run("limit beats resolve error", func(t *testing.T) {
		_, _, err := ParseScoreRequest([]byte(`{"model":"ghost","segments":[{},{},{}]}`), 2, failResolve)
		var lim *BatchLimitError
		if !errors.As(err, &lim) || lim.N != 3 || lim.Limit != 2 {
			t.Fatalf("err = %v, want BatchLimitError{3,2}", err)
		}
	})
	t.Run("limit beats segment error", func(t *testing.T) {
		_, _, err := ParseScoreRequest([]byte(`{"model":"m","segments":[{"nope":1},{},{}]}`), 2, okResolve)
		var lim *BatchLimitError
		if !errors.As(err, &lim) || lim.N != 3 {
			t.Fatalf("err = %v, want BatchLimitError{3,2}", err)
		}
	})
	t.Run("resolve error beats segment error", func(t *testing.T) {
		_, _, err := ParseScoreRequest([]byte(`{"model":"ghost","segments":[{"nope":1}]}`), 10, failResolve)
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want the resolve error", err)
		}
	})
	t.Run("lowest segment reported", func(t *testing.T) {
		body := `{"model":"m","segments":[{},{"nope":1},{"s":5},{"x":2}]}`
		_, _, err := ParseScoreRequest([]byte(body), 10, okResolve)
		var seg *SegmentError
		if !errors.As(err, &seg) || seg.Segment != 1 {
			t.Fatalf("err = %v, want SegmentError at segment 1", err)
		}
		if !strings.Contains(seg.Error(), `unknown attribute "nope"`) {
			t.Fatalf("error %q does not name the attribute", seg)
		}
	})
}

func TestParseScoreRequestMalformed(t *testing.T) {
	p := NewScoreRequestParser(scoreAttrs())
	calls := 0
	resolve := resolveTo(p, &calls)
	for name, body := range map[string]string{
		"empty":              ``,
		"not an object":      `[]`,
		"bare value":         `5`,
		"truncated":          `{"model":"m","segments":[{"x":1}]`,
		"unknown field":      `{"model":"m","wat":1}`,
		"duplicate model":    `{"model":"m","model":"m"}`,
		"duplicate segments": `{"model":"m","segments":[],"segments":[]}`,
		"trailing data":      `{"model":"m","segments":[{"x":1}]}{"again":true}`,
		"trailing token":     `{"model":"m","segments":[{"x":1}]} ]`,
		"segment not object": `{"model":"m","segments":[5]}`,
		"segments object":    `{"model":"m","segments":{"x":1}}`,
		"huge exponent":      `{"model":"m","segments":[{"x":1e999}]}`,
		"bad literal":        `{"model":"m","segments":[nul]}`,
	} {
		_, _, err := ParseScoreRequest([]byte(body), 10, resolve)
		if err == nil {
			t.Errorf("%s: accepted %q", name, body)
			continue
		}
		var seg *SegmentError
		var lim *BatchLimitError
		if errors.Is(err, ErrMissingModel) || errors.Is(err, ErrNoSegments) || errors.As(err, &seg) || errors.As(err, &lim) {
			t.Errorf("%s: classified as %v, want plain malformed", name, err)
		}
	}
	// Trailing whitespace is fine.
	if _, _, err := ParseScoreRequest([]byte(`{"model":"m","segments":[{"x":1}]}`+" \n\t "), 10, resolve); err != nil {
		t.Fatalf("trailing whitespace: %v", err)
	}
}

// TestParseScoreRequestSegmentErrors pins the per-segment semantic
// failures: same classification rules as the NDJSON row decoder.
func TestParseScoreRequestSegmentErrors(t *testing.T) {
	p := NewScoreRequestParser(scoreAttrs())
	calls := 0
	resolve := resolveTo(p, &calls)
	for name, c := range map[string]struct{ body, want string }{
		"unknown attribute": {`{"model":"m","segments":[{"nope":1}]}`, `unknown attribute "nope"`},
		"duplicate key":     {`{"model":"m","segments":[{"x":1,"x":2}]}`, `duplicate attribute "x"`},
		"nominal number":    {`{"model":"m","segments":[{"s":5}]}`, "nominal"},
		"binary range":      {`{"model":"m","segments":[{"flag":2}]}`, "binary"},
		"binary word":       {`{"model":"m","segments":[{"flag":"maybe"}]}`, "binary"},
		"object value":      {`{"model":"m","segments":[{"x":{"v":1}}]}`, "unsupported"},
		"array value":       {`{"model":"m","segments":[{"x":[1]}]}`, "unsupported"},
	} {
		_, _, err := ParseScoreRequest([]byte(c.body), 10, resolve)
		var seg *SegmentError
		if !errors.As(err, &seg) || seg.Segment != 0 {
			t.Errorf("%s: err = %v, want SegmentError at 0", name, err)
			continue
		}
		if !strings.Contains(seg.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", name, seg, c.want)
		}
	}
}

// TestParseScoreRequestDepthCap bounds the structural walker: nesting at
// encoding/json's limit fails as malformed, modest nesting inside an
// unknown-shaped value stays a per-segment error.
func TestParseScoreRequestDepthCap(t *testing.T) {
	okResolve := func(string) (*ScoreRequestParser, error) { return NewScoreRequestParser(scoreAttrs()), nil }
	deep := `{"model":"m","segments":[{"x":` + strings.Repeat("[", maxScoreDepth+1) + strings.Repeat("]", maxScoreDepth+1) + `}]}`
	_, _, err := ParseScoreRequest([]byte(deep), 10, okResolve)
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("err = %v, want a depth error", err)
	}
	var seg *SegmentError
	if errors.As(err, &seg) {
		t.Fatalf("depth overflow classified per-segment: %v", err)
	}

	shallow := `{"model":"m","segments":[{"x":` + strings.Repeat("[", 50) + strings.Repeat("]", 50) + `}]}`
	_, _, err = ParseScoreRequest([]byte(shallow), 10, okResolve)
	if !errors.As(err, &seg) || seg.Segment != 0 {
		t.Fatalf("err = %v, want SegmentError for an unsupported nested value", err)
	}

	// The same nesting hidden behind a deferred segments array (model
	// still unknown) hits the cap in the structural pre-scan too.
	deferred := `{"segments":[{"x":` + strings.Repeat("[", maxScoreDepth+1) + strings.Repeat("]", maxScoreDepth+1) + `}],"model":"m"}`
	_, _, err = ParseScoreRequest([]byte(deferred), 10, okResolve)
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("deferred: err = %v, want a depth error", err)
	}
}

// TestParseScoreRequestResolveCalls pins when resolve runs: at most once
// per parse, with the request's model name, and never when the model is
// missing — a request that cannot name a model must not touch the
// registry.
func TestParseScoreRequestResolveCalls(t *testing.T) {
	p := NewScoreRequestParser(scoreAttrs())
	var gotName string
	calls := 0
	resolve := func(name string) (*ScoreRequestParser, error) {
		calls++
		gotName = name
		return p, nil
	}
	if _, _, err := ParseScoreRequest([]byte(`{"segments":[{"x":1}]}`), 10, resolve); !errors.Is(err, ErrMissingModel) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := ParseScoreRequest([]byte(`{"segments":[{"x":}]}`), 10, resolve); err == nil {
		t.Fatal("malformed body accepted")
	}
	if calls != 0 {
		t.Fatalf("resolve ran %d times without a model name", calls)
	}
	if _, _, err := ParseScoreRequest([]byte(`{"segments":[{"x":1}],"model":"m"}`), 10, resolve); err != nil {
		t.Fatal(err)
	}
	if calls != 1 || gotName != "m" {
		t.Fatalf("calls=%d name=%q", calls, gotName)
	}
	// Inline decoding (model first) resolves once too, even when a later
	// segment fails.
	calls = 0
	if _, _, err := ParseScoreRequest([]byte(`{"model":"m","segments":[{},{"nope":1}]}`), 10, resolve); err == nil {
		t.Fatal("bad segment accepted")
	}
	if calls != 1 {
		t.Fatalf("inline path resolved %d times, want 1", calls)
	}
}

// TestParseScoreRequestReuse drives one parser through several requests:
// the batch must reset between parses and unseen nominal levels must stay
// interned, exactly like a long-lived NDJSON reader.
func TestParseScoreRequestReuse(t *testing.T) {
	p := NewScoreRequestParser(scoreAttrs())
	calls := 0
	resolve := resolveTo(p, &calls)
	if p.InternedLevels() != 2 {
		t.Fatalf("fresh parser interned %d levels, want 2", p.InternedLevels())
	}
	_, b, err := ParseScoreRequest([]byte(`{"model":"m","segments":[{"s":"zebra"},{"s":"a"}]}`), 10, resolve)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 || p.InternedLevels() != 3 {
		t.Fatalf("rows=%d interned=%d, want 2 rows and 3 levels", b.Len(), p.InternedLevels())
	}
	if b.At(0, 1) != 2 {
		t.Fatalf("unseen level decoded to %v, want the interned index 2", b.At(0, 1))
	}
	_, b, err = ParseScoreRequest([]byte(`{"model":"m","segments":[{"s":"zebra"}]}`), 10, resolve)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 || p.InternedLevels() != 3 {
		t.Fatalf("reuse: rows=%d interned=%d, want 1 row and 3 levels", b.Len(), p.InternedLevels())
	}
	if b.At(0, 1) != 2 {
		t.Fatalf("interned level lost across requests: got %v", b.At(0, 1))
	}
}

// TestParseScoreRequestBigBatch decodes a batch past the limit check's
// boundary in both directions.
func TestParseScoreRequestBigBatch(t *testing.T) {
	p := NewScoreRequestParser(scoreAttrs())
	calls := 0
	resolve := resolveTo(p, &calls)
	body := func(n int) []byte {
		var sb strings.Builder
		sb.WriteString(`{"model":"m","segments":[`)
		for i := 0; i < n; i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, `{"x":%d}`, i)
		}
		sb.WriteString(`]}`)
		return []byte(sb.String())
	}
	_, b, err := ParseScoreRequest(body(500), 500, resolve)
	if err != nil || b.Len() != 500 {
		t.Fatalf("at the limit: rows=%v err=%v", b, err)
	}
	if b.At(499, 0) != 499 {
		t.Fatalf("row 499 = %v", b.At(499, 0))
	}
	_, _, err = ParseScoreRequest(body(501), 500, resolve)
	var lim *BatchLimitError
	if !errors.As(err, &lim) || lim.N != 501 || lim.Limit != 500 {
		t.Fatalf("over the limit: err = %v", err)
	}
}

// TestScoreRequestErrorTypes pins the error type surfaces: messages and
// unwrapping.
func TestScoreRequestErrorTypes(t *testing.T) {
	lim := &BatchLimitError{N: 12, Limit: 10}
	if lim.Error() != "batch of 12 exceeds the 10-segment limit" {
		t.Fatalf("limit message %q", lim.Error())
	}
	inner := errors.New("boom")
	seg := &SegmentError{Segment: 3, Err: inner}
	if seg.Error() != "segment 3: boom" {
		t.Fatalf("segment message %q", seg.Error())
	}
	if !errors.Is(seg, inner) || errors.Unwrap(seg) != inner {
		t.Fatal("SegmentError does not unwrap to its cause")
	}
}

// TestParseScoreRequestModelField covers the model field's failure
// shapes: wrong value types, broken literals, missing separators.
func TestParseScoreRequestModelField(t *testing.T) {
	okResolve := func(string) (*ScoreRequestParser, error) { return NewScoreRequestParser(scoreAttrs()), nil }
	for name, body := range map[string]string{
		"number model":      `{"model":5}`,
		"object model":      `{"model":{}}`,
		"broken null":       `{"model":nul}`,
		"missing colon":     `{"model" "m"}`,
		"missing value":     `{"model":}`,
		"bad separator":     `{"model":"m" "segments":[]}`,
		"segment separator": `{"model":"m","segments":[{} {}]}`,
	} {
		_, _, err := ParseScoreRequest([]byte(body), 10, okResolve)
		if err == nil || errors.Is(err, ErrMissingModel) || errors.Is(err, ErrNoSegments) {
			t.Errorf("%s: err = %v, want a syntax error", name, err)
		}
	}
	// An empty model name with deferred segments is still a missing model.
	if _, _, err := ParseScoreRequest([]byte(`{"model":"","segments":[{"x":1}]}`), 10, okResolve); !errors.Is(err, ErrMissingModel) {
		t.Fatalf("empty model: err = %v", err)
	}
	// The deferred re-scan must also run structurally when resolve fails.
	boom := errors.New("no such model")
	failResolve := func(string) (*ScoreRequestParser, error) { return nil, boom }
	if _, _, err := ParseScoreRequest([]byte(`{"segments":[{"x":1}],"model":"ghost"}`), 10, failResolve); !errors.Is(err, boom) {
		t.Fatalf("deferred resolve failure: err = %v", err)
	}
}

// TestSkipValueShapes drives the structural walker over every value
// shape and failure mode directly.
func TestSkipValueShapes(t *testing.T) {
	valid := []string{
		`"str"`, `-12.5e+3`, `true`, `false`, `null`, `{}`, `[]`,
		`{"a":1}`, `{"a":1,"b":[2,3],"c":{"d":null}}`,
		`[1,"two",true,false,null,{"x":[]},[[]]]`,
		`{"nested":{"deep":{"deeper":[{"bottom":0}]}}}`,
	}
	for _, in := range valid {
		s := lineScanner{buf: []byte(in + " ,tail")}
		if err := skipValue(&s); err != nil {
			t.Errorf("%q: %v", in, err)
			continue
		}
		s.skipSpace()
		if s.pos >= len(s.buf) || s.buf[s.pos] != ',' {
			t.Errorf("%q: walker stopped at offset %d, not at the trailing comma", in, s.pos)
		}
	}
	invalid := []string{
		``, `}`, `tru`, `nulL`, `fals!`, `"unterminated`, `01`, `+1`,
		`{`, `{"a"}`, `{"a":}`, `{"a":1,}`, `{"a":1 "b":2}`, `{1:2}`,
		`[`, `[1,]`, `[1 2]`, `[,]`, `{"a":[1}`, `[{"a":1]`,
	}
	for _, in := range invalid {
		s := lineScanner{buf: []byte(in)}
		if err := skipValue(&s); err == nil {
			t.Errorf("%q: accepted", in)
		}
	}
}
