package data

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	d := sample()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("sample", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() || back.NumAttrs() != d.NumAttrs() {
		t.Fatalf("round trip shape %dx%d", back.Len(), back.NumAttrs())
	}
	for j := range d.Attrs() {
		if back.Attr(j).Kind != d.Attr(j).Kind || back.Attr(j).Name != d.Attr(j).Name {
			t.Fatalf("attr %d changed: %+v vs %+v", j, back.Attr(j), d.Attr(j))
		}
		for i := 0; i < d.Len(); i++ {
			a, b := d.At(i, j), back.At(i, j)
			if IsMissing(a) != IsMissing(b) || (!IsMissing(a) && a != b) {
				t.Fatalf("value (%d,%d) changed: %v vs %v", i, j, a, b)
			}
		}
	}
	// Nominal levels survive (discovered in data order).
	if back.Attr(1).Levels[0] != "asphalt" {
		t.Fatalf("levels = %v", back.Attr(1).Levels)
	}
}

func TestReadCSVVariants(t *testing.T) {
	in := "x,flag:binary,kind:nominal\n1.5,true,aa\n,no,bb\n?,1,aa\n"
	d, err := ReadCSV("v", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.Attr(0).Kind != Interval {
		t.Fatal("kind-less header should default to interval")
	}
	if d.At(0, 1) != 1 || d.At(1, 1) != 0 || d.At(2, 1) != 1 {
		t.Fatalf("binary parsing wrong: %v", d.Col(1))
	}
	if !IsMissing(d.At(1, 0)) || !IsMissing(d.At(2, 0)) {
		t.Fatal("empty and ? cells should be missing")
	}
	if d.At(2, 2) != 0 { // "aa" was first level
		t.Fatalf("nominal level reuse wrong: %v", d.Col(2))
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"x:weird\n1\n",    // unknown kind
		"x\n1,2\n",        // field count mismatch (csv reader catches)
		"x:binary\nmeh\n", // bad binary cell
		"x\nabc\n",        // bad interval cell
	}
	for i, in := range cases {
		if _, err := ReadCSV("bad", strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestReadCSVEmptyBody(t *testing.T) {
	d, err := ReadCSV("empty", strings.NewReader("a,b:binary\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 || d.NumAttrs() != 2 {
		t.Fatalf("empty-body dataset %dx%d", d.Len(), d.NumAttrs())
	}
}
