package data

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// drain collects every batch of a reader as copied rows.
func drain(t *testing.T, br BatchReader) ([][]float64, []int) {
	t.Helper()
	var rows [][]float64
	var sizes []int
	for {
		b, err := br.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		sizes = append(sizes, b.Len())
		for j := 0; j < len(b.Attrs()); j++ {
			if got := len(b.Col(j)); got != b.Len() {
				t.Fatalf("column %d has %d values for a %d-row batch", j, got, b.Len())
			}
		}
		for i := 0; i < b.Len(); i++ {
			row := make([]float64, len(b.Attrs()))
			for j := range row {
				row[j] = b.At(i, j)
			}
			rows = append(rows, row)
		}
	}
	// A drained reader keeps reporting EOF.
	if _, err := br.Next(); err != io.EOF {
		t.Fatalf("drained reader returned %v, want io.EOF", err)
	}
	return rows, sizes
}

func sameRows(t *testing.T, got [][]float64, want *Dataset) {
	t.Helper()
	if len(got) != want.Len() {
		t.Fatalf("streamed %d rows, want %d", len(got), want.Len())
	}
	for i, row := range got {
		for j, v := range row {
			w := want.At(i, j)
			if IsMissing(v) != IsMissing(w) || (!IsMissing(v) && v != w) {
				t.Fatalf("row %d col %d: streamed %v, in-memory %v", i, j, v, w)
			}
		}
	}
}

func TestCSVBatchReaderMatchesReadCSV(t *testing.T) {
	d := sample()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, chunk := range []int{1, 2, 3, 1000} {
		br, err := NewCSVBatchReader(strings.NewReader(text), chunk)
		if err != nil {
			t.Fatal(err)
		}
		rows, sizes := drain(t, br)
		sameRows(t, rows, d)
		// Ragged final chunk: every batch is full except possibly the last.
		for k, n := range sizes[:len(sizes)-1] {
			if n != chunk {
				t.Fatalf("chunk=%d: batch %d has %d rows", chunk, k, n)
			}
		}
		if last := sizes[len(sizes)-1]; last > chunk || last == 0 {
			t.Fatalf("chunk=%d: final batch has %d rows", chunk, last)
		}
	}
}

func TestCSVBatchReaderChunkLargerThanInput(t *testing.T) {
	in := "x,flag:binary\n1,true\n2,false\n"
	br, err := NewCSVBatchReader(strings.NewReader(in), 1000)
	if err != nil {
		t.Fatal(err)
	}
	rows, sizes := drain(t, br)
	if len(sizes) != 1 || sizes[0] != 2 {
		t.Fatalf("sizes = %v, want one batch of 2", sizes)
	}
	if rows[0][0] != 1 || rows[1][1] != 0 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCSVBatchReaderEmptyBody(t *testing.T) {
	br, err := NewCSVBatchReader(strings.NewReader("a,b:nominal\n"), 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := br.Next(); err != io.EOF {
		t.Fatalf("empty body Next = %v, want io.EOF", err)
	}
	if len(br.Attrs()) != 2 || br.Attrs()[1].Kind != Nominal {
		t.Fatalf("schema = %+v", br.Attrs())
	}
}

func TestCSVBatchReaderEmptyInput(t *testing.T) {
	if _, err := NewCSVBatchReader(strings.NewReader(""), 8); err == nil {
		t.Fatal("expected a header error on empty input")
	}
}

func TestCSVBatchReaderReusesBatch(t *testing.T) {
	in := "x\n1\n2\n3\n4\n5\n"
	br, err := NewCSVBatchReader(strings.NewReader(in), 2)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := br.Next()
	if err != nil {
		t.Fatal(err)
	}
	col1 := b1.Col(0)
	b2, err := br.Next()
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Fatal("reader allocated a fresh batch per chunk")
	}
	if &col1[0] != &b2.Col(0)[0] {
		t.Fatal("reader reallocated column buffers between chunks")
	}
	if b2.At(0, 0) != 3 || b2.At(1, 0) != 4 {
		t.Fatalf("second chunk = %v", b2.Col(0))
	}
}

func TestCSVBatchReaderLevelGrowth(t *testing.T) {
	in := "s:nominal\na\nb\nc\n"
	br, err := NewCSVBatchReader(strings.NewReader(in), 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := br.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(b.Attrs()[0].Levels); got != 2 {
		t.Fatalf("levels after first chunk = %d, want 2", got)
	}
	if _, err := br.Next(); err != nil {
		t.Fatal(err)
	}
	// The level set grew append-only, so earlier indices stay valid.
	if got := br.Attrs()[0].Levels; len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("levels after second chunk = %v", got)
	}
}

func TestCSVBatchReaderRowErrors(t *testing.T) {
	cases := []string{
		"x\n1,2\n",        // field count mismatch
		"x:binary\nmeh\n", // bad binary cell
		"x\nabc\n",        // bad interval cell
	}
	for i, in := range cases {
		br, err := NewCSVBatchReader(strings.NewReader(in), 8)
		if err != nil {
			t.Fatalf("case %d: header rejected: %v", i, err)
		}
		if _, err := br.Next(); err == nil {
			t.Errorf("case %d: expected a row error", i)
		}
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	d := sample()
	var buf bytes.Buffer
	if err := d.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNDJSON("back", &buf, d.Attrs())
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() || back.NumAttrs() != d.NumAttrs() {
		t.Fatalf("round trip shape %dx%d", back.Len(), back.NumAttrs())
	}
	for j := range d.Attrs() {
		for i := 0; i < d.Len(); i++ {
			a, b := d.At(i, j), back.At(i, j)
			if IsMissing(a) != IsMissing(b) || (!IsMissing(a) && a != b) {
				t.Fatalf("value (%d,%d) changed: %v vs %v", i, j, a, b)
			}
		}
	}
}

func TestNDJSONReaderConventions(t *testing.T) {
	attrs := []Attribute{
		{Name: "x", Kind: Interval},
		{Name: "flag", Kind: Binary},
		{Name: "surface", Kind: Nominal, Levels: []string{"seal"}},
	}
	in := `{"x": 1.5, "flag": true, "surface": "seal"}
{"x": null, "flag": "no"}

{"flag": 0, "surface": "gravel", "x": "2.5"}
`
	br := NewNDJSONBatchReader(strings.NewReader(in), attrs, 2)
	rows, sizes := drain(t, br)
	if len(rows) != 3 {
		t.Fatalf("parsed %d rows, want 3 (blank line skipped); sizes %v", len(rows), sizes)
	}
	if rows[0][0] != 1.5 || rows[0][1] != 1 || rows[0][2] != 0 {
		t.Fatalf("row 0 = %v", rows[0])
	}
	if !IsMissing(rows[1][0]) || rows[1][1] != 0 || !IsMissing(rows[1][2]) {
		t.Fatalf("row 1 = %v", rows[1])
	}
	// "gravel" was interned as a new level; numeric string parsed.
	if rows[2][0] != 2.5 || rows[2][1] != 0 || rows[2][2] != 1 {
		t.Fatalf("row 2 = %v", rows[2])
	}
	if got := br.Attrs()[2].Levels; len(got) != 2 || got[1] != "gravel" {
		t.Fatalf("levels = %v", got)
	}
}

func TestNDJSONReaderErrors(t *testing.T) {
	attrs := []Attribute{
		{Name: "x", Kind: Interval},
		{Name: "flag", Kind: Binary},
		{Name: "surface", Kind: Nominal},
	}
	cases := []string{
		`{"typo": 1}`,       // unknown attribute
		`{"x": "abc"}`,      // unparsable interval string
		`{"flag": 2}`,       // binary out of range
		`{"flag": "maybe"}`, // binary bad string
		`{"surface": 3}`,    // nominal wants a level name
		`{"x": [1]}`,        // unsupported value type
		`{"x": true}`,       // boolean into an interval
		`{"x": 1`,           // malformed JSON
		`{"x": 1} extra`,    // trailing data after the object
		`{"x": 1e999}`,      // number overflows float64
	}
	for i, in := range cases {
		br := NewNDJSONBatchReader(strings.NewReader(in), attrs, 8)
		if _, err := br.Next(); err == nil || err == io.EOF {
			t.Errorf("case %d: expected an error, got %v", i, err)
		}
	}
}

// TestNDJSONReaderRejectsDuplicateKeys pins the duplicate-key fix: a
// generic JSON decode resolves {"x":1,"x":9} last-wins, silently scoring
// 9 — the reader must reject the row instead, naming the repeated
// attribute. A key repeated with null is equally ambiguous and equally
// rejected; the same key on different rows is of course fine.
func TestNDJSONReaderRejectsDuplicateKeys(t *testing.T) {
	attrs := []Attribute{
		{Name: "x", Kind: Interval},
		{Name: "surface", Kind: Nominal, Levels: []string{"seal"}},
	}
	for _, in := range []string{
		`{"x": 1, "x": 9}`,
		`{"x": 1, "surface": "seal", "x": 9}`,
		`{"x": 1, "x": null}`,
		`{"surface": "seal", "surface": "seal"}`,
	} {
		br := NewNDJSONBatchReader(strings.NewReader(in), attrs, 8)
		_, err := br.Next()
		if err == nil || err == io.EOF {
			t.Fatalf("%s: expected a duplicate-key error, got %v", in, err)
		}
		if !strings.Contains(err.Error(), "duplicate attribute") {
			t.Fatalf("%s: error %q does not name the duplicate", in, err)
		}
	}
	// Repeats across rows are not duplicates: the per-row marks must reset.
	br := NewNDJSONBatchReader(strings.NewReader("{\"x\": 1}\n{\"x\": 2}\n"), attrs, 8)
	b, err := br.Next()
	if err != nil {
		t.Fatalf("distinct rows rejected: %v", err)
	}
	if b.Len() != 2 || b.At(0, 0) != 1 || b.At(1, 0) != 2 {
		t.Fatalf("rows = %v %v", b.Col(0), b.Col(1))
	}
}

func TestNDJSONReaderEmptyInput(t *testing.T) {
	attrs := []Attribute{{Name: "x", Kind: Interval}}
	br := NewNDJSONBatchReader(strings.NewReader(""), attrs, 8)
	if _, err := br.Next(); err != io.EOF {
		t.Fatalf("empty input Next = %v, want io.EOF", err)
	}
}

func TestDatasetStream(t *testing.T) {
	d := sample()
	for _, chunk := range []int{1, 2, 100} {
		rows, _ := drain(t, d.Stream(chunk))
		sameRows(t, rows, d)
	}
	// Zero-copy: the batch aliases the dataset's columns.
	b, err := d.Stream(2).Next()
	if err != nil {
		t.Fatal(err)
	}
	if &b.Col(0)[0] != &d.Col(0)[0] {
		t.Fatal("Stream copied column data")
	}
}

func TestReadAllOfStreamEqualsDataset(t *testing.T) {
	d := sample()
	back, err := ReadAll("copy", d.Stream(2))
	if err != nil {
		t.Fatal(err)
	}
	sameRowsDataset := func(a, b *Dataset) {
		t.Helper()
		if a.Len() != b.Len() || a.NumAttrs() != b.NumAttrs() {
			t.Fatalf("shape %dx%d vs %dx%d", a.Len(), a.NumAttrs(), b.Len(), b.NumAttrs())
		}
		for j := 0; j < a.NumAttrs(); j++ {
			for i := 0; i < a.Len(); i++ {
				x, y := a.At(i, j), b.At(i, j)
				if IsMissing(x) != IsMissing(y) || (!IsMissing(x) && x != y) {
					t.Fatalf("value (%d,%d): %v vs %v", i, j, x, y)
				}
			}
		}
	}
	sameRowsDataset(d, back)
}
