package data

import (
	"math"
	"strings"
	"testing"
)

func sample() *Dataset {
	return NewBuilder("sample").
		Interval("aadt").
		Nominal("surface", "asphalt", "chip-seal").
		Binary("crash").
		Interval("count").
		Row(1200, 0, 0, 0).
		Row(4500, 1, 1, 3).
		Row(800, 0, 1, 1).
		Row(9900, 1, 1, 12).
		Row(Missing, 0, 0, 0).
		Build()
}

func TestBuilderBasics(t *testing.T) {
	d := sample()
	if d.Len() != 5 || d.NumAttrs() != 4 {
		t.Fatalf("len=%d attrs=%d", d.Len(), d.NumAttrs())
	}
	if d.Name() != "sample" {
		t.Fatalf("name = %q", d.Name())
	}
	if d.Attr(1).Kind != Nominal || len(d.Attr(1).Levels) != 2 {
		t.Fatalf("attr 1 = %+v", d.Attr(1))
	}
	if d.At(1, 3) != 3 {
		t.Fatalf("At(1,3) = %v", d.At(1, 3))
	}
	if !IsMissing(d.At(4, 0)) {
		t.Fatal("missing value lost")
	}
}

func TestBuilderPanics(t *testing.T) {
	cases := map[string]func(){
		"duplicate attr": func() { NewBuilder("x").Interval("a").Interval("a") },
		"short row":      func() { NewBuilder("x").Interval("a").Interval("b").Row(1) },
		"bad binary":     func() { NewBuilder("x").Binary("a").Row(2) },
		"bad nominal":    func() { NewBuilder("x").Nominal("a", "u", "v").Row(5) },
		"frac nominal":   func() { NewBuilder("x").Nominal("a", "u", "v").Row(0.5) },
		"attr after row": func() { NewBuilder("x").Interval("a").Row(1).Interval("b") },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAttrIndex(t *testing.T) {
	d := sample()
	j, err := d.AttrIndex("crash")
	if err != nil || j != 2 {
		t.Fatalf("AttrIndex = %d, %v", j, err)
	}
	if _, err := d.AttrIndex("nope"); err == nil {
		t.Fatal("missing attribute should error")
	}
	if d.MustAttrIndex("count") != 3 {
		t.Fatal("MustAttrIndex mismatch")
	}
}

func TestMustAttrIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAttrIndex on unknown attr should panic")
		}
	}()
	sample().MustAttrIndex("ghost")
}

func TestRowCopies(t *testing.T) {
	d := sample()
	row := d.Row(1, nil)
	want := []float64{4500, 1, 1, 3}
	for j, v := range want {
		if row[j] != v {
			t.Fatalf("row = %v, want %v", row, want)
		}
	}
	// Reuse a buffer.
	buf := make([]float64, 4)
	row2 := d.Row(0, buf)
	if &row2[0] != &buf[0] {
		t.Fatal("Row did not reuse the buffer")
	}
}

func TestSubsetAndFilter(t *testing.T) {
	d := sample()
	s := d.Subset("sub", []int{3, 0, 3})
	if s.Len() != 3 || s.At(0, 3) != 12 || s.At(2, 3) != 12 {
		t.Fatalf("subset wrong: %v", s.Col(3))
	}
	crashes := d.Filter("crashes", func(i int) bool { return d.At(i, 2) == 1 })
	if crashes.Len() != 3 {
		t.Fatalf("filter len = %d", crashes.Len())
	}
}

func TestSubsetIsACopy(t *testing.T) {
	d := sample()
	s := d.Subset("sub", []int{0})
	s.Col(0)[0] = -99
	if d.At(0, 0) == -99 {
		t.Fatal("Subset aliases parent storage")
	}
}

func TestDropKeepAttrs(t *testing.T) {
	d := sample()
	dropped, err := d.DropAttrs("surface")
	if err != nil {
		t.Fatal(err)
	}
	if dropped.NumAttrs() != 3 {
		t.Fatalf("drop left %d attrs", dropped.NumAttrs())
	}
	if _, err := dropped.AttrIndex("surface"); err == nil {
		t.Fatal("surface should be gone")
	}
	if _, err := d.DropAttrs("ghost"); err == nil {
		t.Fatal("dropping unknown attr should error")
	}
	kept, err := d.KeepAttrs("count", "aadt")
	if err != nil {
		t.Fatal(err)
	}
	if kept.NumAttrs() != 2 || kept.Attr(0).Name != "count" {
		t.Fatalf("keep gave %v", kept.Attrs())
	}
	if _, err := d.KeepAttrs("ghost"); err == nil {
		t.Fatal("keeping unknown attr should error")
	}
}

func TestAppendColumn(t *testing.T) {
	d := sample()
	d2, err := d.AppendColumn(Attribute{Name: "extra", Kind: Interval}, []float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumAttrs() != 5 || d2.At(4, 4) != 5 {
		t.Fatal("append column failed")
	}
	if _, err := d.AppendColumn(Attribute{Name: "aadt"}, []float64{1, 2, 3, 4, 5}); err == nil {
		t.Fatal("duplicate column should error")
	}
	if _, err := d.AppendColumn(Attribute{Name: "short"}, []float64{1}); err == nil {
		t.Fatal("wrong length should error")
	}
}

func TestConcat(t *testing.T) {
	d := sample()
	both, err := d.Concat("both", d)
	if err != nil {
		t.Fatal(err)
	}
	if both.Len() != 10 {
		t.Fatalf("concat len = %d", both.Len())
	}
	other := NewBuilder("other").Interval("x").Build()
	if _, err := d.Concat("bad", other); err == nil {
		t.Fatal("schema mismatch should error")
	}
}

func TestMissingCount(t *testing.T) {
	d := sample()
	if d.MissingCount(0) != 1 || d.MissingCount(1) != 0 {
		t.Fatal("missing counts wrong")
	}
}

func TestWithName(t *testing.T) {
	d := sample().WithName("renamed")
	if d.Name() != "renamed" || d.Len() != 5 {
		t.Fatal("WithName broken")
	}
}

func TestKindString(t *testing.T) {
	if Interval.String() != "interval" || Nominal.String() != "nominal" || Binary.String() != "binary" {
		t.Fatal("kind names wrong")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Fatal("unknown kind should include its value")
	}
}

func TestSummarize(t *testing.T) {
	d := sample()
	sums := d.Summarize()
	if sums[0].Missing != 1 || sums[0].N != 4 {
		t.Fatalf("aadt summary = %+v", sums[0])
	}
	if math.Abs(sums[0].Mean-(1200+4500+800+9900)/4.0) > 1e-9 {
		t.Fatalf("aadt mean = %v", sums[0].Mean)
	}
	if len(sums[1].LevelCounts) != 2 || sums[1].LevelCounts[0] != 3 {
		t.Fatalf("surface levels = %v", sums[1].LevelCounts)
	}
	if !strings.Contains(d.String(), "sample") {
		t.Fatal("String() missing dataset name")
	}
}
