package data

import (
	"fmt"
	"strconv"
	"unicode/utf16"
	"unicode/utf8"
)

// This file is the hand-rolled NDJSON object scanner behind
// NDJSONBatchReader. It exists for two reasons. Correctness: the generic
// encoding/json path decodes each line into a map, where duplicate keys
// silently resolve last-wins — {"aadt":1,"aadt":9} would score 9 with no
// error anywhere — while this scanner sees every key in document order and
// rejects duplicates per row. Speed: one row costs a single left-to-right
// pass with no intermediate map, no interface boxing and no reflection,
// which matters once the compiled inference engine makes parsing, not
// scoring, the streaming hot path.
//
// The accepted value grammar matches the documented feed format (numbers,
// strings, true/false, null; objects and arrays are rejected as
// unsupported values). String decoding follows encoding/json: the four-hex
// \uXXXX escape with UTF-16 surrogate pairs, unpaired surrogates and
// invalid UTF-8 replaced by U+FFFD, raw control characters rejected.

// lineScanner walks one NDJSON line.
type lineScanner struct {
	buf []byte
	pos int
}

// skipSpace advances past JSON whitespace.
func (s *lineScanner) skipSpace() {
	for s.pos < len(s.buf) {
		switch s.buf[s.pos] {
		case ' ', '\t', '\n', '\r':
			s.pos++
		default:
			return
		}
	}
}

// eat consumes c if it is the next byte.
func (s *lineScanner) eat(c byte) bool {
	if s.pos < len(s.buf) && s.buf[s.pos] == c {
		s.pos++
		return true
	}
	return false
}

// syntaxErr reports what was expected at the current position.
func (s *lineScanner) syntaxErr(want string) error {
	if s.pos >= len(s.buf) {
		return fmt.Errorf("unexpected end of object, want %s", want)
	}
	return fmt.Errorf("unexpected character %q at offset %d, want %s", s.buf[s.pos], s.pos, want)
}

// scanString consumes a JSON string and returns its decoded bytes. The
// fast path — no escapes, no control bytes, no non-ASCII — returns a
// zero-copy slice of the line; anything else goes through decodeString.
// The opening quote must already be the next byte.
func (s *lineScanner) scanString() ([]byte, error) {
	if !s.eat('"') {
		return nil, s.syntaxErr("a string")
	}
	start := s.pos
	for i := s.pos; i < len(s.buf); i++ {
		c := s.buf[i]
		switch {
		case c == '"':
			s.pos = i + 1
			return s.buf[start:i], nil
		case c == '\\' || c >= utf8.RuneSelf:
			return s.decodeString(start)
		case c < 0x20:
			return nil, fmt.Errorf("raw control character %q in string at offset %d", c, i)
		}
	}
	return nil, fmt.Errorf("unterminated string at offset %d", start-1)
}

// decodeString is the slow path: it resumes at offset start (inside the
// string) and decodes escapes and UTF-8 exactly as encoding/json does —
// \uXXXX with surrogate pairs, unpaired surrogates and invalid UTF-8
// collapsing to U+FFFD.
func (s *lineScanner) decodeString(start int) ([]byte, error) {
	out := make([]byte, 0, len(s.buf)-start+8)
	out = append(out, s.buf[start:s.pos]...)
	i := s.pos
	for i < len(s.buf) {
		c := s.buf[i]
		switch {
		case c == '"':
			s.pos = i + 1
			return out, nil
		case c < 0x20:
			return nil, fmt.Errorf("raw control character %q in string at offset %d", c, i)
		case c == '\\':
			i++
			if i >= len(s.buf) {
				return nil, fmt.Errorf("unterminated escape at offset %d", i-1)
			}
			switch s.buf[i] {
			case '"', '\\', '/':
				out = append(out, s.buf[i])
				i++
			case 'b':
				out = append(out, '\b')
				i++
			case 'f':
				out = append(out, '\f')
				i++
			case 'n':
				out = append(out, '\n')
				i++
			case 'r':
				out = append(out, '\r')
				i++
			case 't':
				out = append(out, '\t')
				i++
			case 'u':
				r, n, err := s.decodeHexRune(i - 1)
				if err != nil {
					return nil, err
				}
				out = utf8.AppendRune(out, r)
				i += n - 1
			default:
				return nil, fmt.Errorf("invalid escape \\%c at offset %d", s.buf[i], i-1)
			}
		case c < utf8.RuneSelf:
			out = append(out, c)
			i++
		default:
			r, size := utf8.DecodeRune(s.buf[i:])
			if r == utf8.RuneError && size == 1 {
				out = utf8.AppendRune(out, utf8.RuneError)
				i++
				continue
			}
			out = append(out, s.buf[i:i+size]...)
			i += size
		}
	}
	return nil, fmt.Errorf("unterminated string")
}

// decodeHexRune decodes the \uXXXX escape starting at offset i (the
// backslash), pairing UTF-16 surrogates; unpaired surrogates become
// U+FFFD. It returns the rune and the bytes consumed from the backslash
// on.
func (s *lineScanner) decodeHexRune(i int) (rune, int, error) {
	r1, err := hex4(s.buf, i+2)
	if err != nil {
		return 0, 0, err
	}
	if !utf16.IsSurrogate(r1) {
		return r1, 6, nil
	}
	// A high surrogate may pair with a following \uXXXX low surrogate.
	if i+12 <= len(s.buf) && s.buf[i+6] == '\\' && s.buf[i+7] == 'u' {
		r2, err := hex4(s.buf, i+8)
		if err == nil {
			if r := utf16.DecodeRune(r1, r2); r != utf8.RuneError {
				return r, 12, nil
			}
		}
	}
	return utf8.RuneError, 6, nil
}

// hex4 parses four hex digits at buf[i:].
func hex4(buf []byte, i int) (rune, error) {
	if i+4 > len(buf) {
		return 0, fmt.Errorf("truncated \\u escape at offset %d", i-2)
	}
	var r rune
	for _, c := range buf[i : i+4] {
		r <<= 4
		switch {
		case c >= '0' && c <= '9':
			r |= rune(c - '0')
		case c >= 'a' && c <= 'f':
			r |= rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			r |= rune(c-'A') + 10
		default:
			return 0, fmt.Errorf("invalid \\u escape digit %q at offset %d", c, i)
		}
	}
	return r, nil
}

// numberChar reports whether c can appear inside a number token.
func numberChar(c byte) bool {
	return (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E'
}

// validJSONNumber checks the RFC 8259 number grammar:
// -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?. strconv.ParseFloat is
// wider ("01", "1.", "1.e5"), and the reader documents strict parsing —
// a malformed producer must fail here, not at the next JSON tool
// downstream.
func validJSONNumber(tok []byte) bool {
	i := 0
	if i < len(tok) && tok[i] == '-' {
		i++
	}
	switch {
	case i < len(tok) && tok[i] == '0':
		i++
	case i < len(tok) && tok[i] >= '1' && tok[i] <= '9':
		for i < len(tok) && tok[i] >= '0' && tok[i] <= '9' {
			i++
		}
	default:
		return false
	}
	if i < len(tok) && tok[i] == '.' {
		i++
		if i >= len(tok) || tok[i] < '0' || tok[i] > '9' {
			return false
		}
		for i < len(tok) && tok[i] >= '0' && tok[i] <= '9' {
			i++
		}
	}
	if i < len(tok) && (tok[i] == 'e' || tok[i] == 'E') {
		i++
		if i < len(tok) && (tok[i] == '+' || tok[i] == '-') {
			i++
		}
		if i >= len(tok) || tok[i] < '0' || tok[i] > '9' {
			return false
		}
		for i < len(tok) && tok[i] >= '0' && tok[i] <= '9' {
			i++
		}
	}
	return i == len(tok)
}

// scanNumber consumes a number token and parses it.
func (s *lineScanner) scanNumber() (float64, error) {
	start := s.pos
	for s.pos < len(s.buf) && numberChar(s.buf[s.pos]) {
		s.pos++
	}
	tok := s.buf[start:s.pos]
	if !validJSONNumber(tok) {
		return 0, fmt.Errorf("malformed number %q at offset %d", tok, start)
	}
	v, err := strconv.ParseFloat(string(tok), 64)
	if err != nil {
		return 0, fmt.Errorf("malformed number %q at offset %d", tok, start)
	}
	return v, nil
}

// scanLiteral consumes the given keyword (true/false/null).
func (s *lineScanner) scanLiteral(word string) error {
	if len(s.buf)-s.pos < len(word) || string(s.buf[s.pos:s.pos+len(word)]) != word {
		return s.syntaxErr(fmt.Sprintf("%q", word))
	}
	s.pos += len(word)
	if s.pos < len(s.buf) {
		if c := s.buf[s.pos]; c != ',' && c != '}' && c != ']' && c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			return fmt.Errorf("unexpected character %q after %q at offset %d", c, word, s.pos)
		}
	}
	return nil
}

// rowDecoder is the schema-directed object decoder shared by the NDJSON
// feed reader and the /score request parser: it owns a private copy of the
// schema, the name and nominal-level indexes over it, and the reusable
// row buffer one {...} object decodes into. Duplicate keys within one
// object are rejected via per-column generation marks, so a decode never
// silently resolves {"aadt":1,"aadt":9} last-wins the way a Go map would.
type rowDecoder struct {
	attrs      []Attribute
	byName     map[string]int
	levelIndex []map[string]int
	rowBuf     []float64
	seen       []int // per-column generation marks for duplicate-key checks
	gen        int
}

// newRowDecoder deep-copies the schema and builds the decoding indexes.
// Nominal level sets grow as new level names appear in the data; the
// caller's attrs are never mutated.
func newRowDecoder(attrs []Attribute) *rowDecoder {
	copied := make([]Attribute, len(attrs))
	byName := make(map[string]int, len(attrs))
	levelIndex := make([]map[string]int, len(attrs))
	for j, a := range attrs {
		copied[j] = Attribute{Name: a.Name, Kind: a.Kind, Levels: append([]string(nil), a.Levels...)}
		byName[a.Name] = j
		if a.Kind == Nominal {
			idx := make(map[string]int, len(a.Levels))
			for l, name := range a.Levels {
				idx[name] = l
			}
			levelIndex[j] = idx
		}
	}
	return &rowDecoder{
		attrs:      copied,
		byName:     byName,
		levelIndex: levelIndex,
		rowBuf:     make([]float64, len(copied)),
		seen:       make([]int, len(copied)),
	}
}

// missingRow fills rowBuf with missing markers and returns it — the decode
// of an explicit null row.
func (d *rowDecoder) missingRow() []float64 {
	for j := range d.rowBuf {
		d.rowBuf[j] = Missing
	}
	return d.rowBuf
}

// parseObject decodes one {...} object from the scanner into rowBuf
// (schema order, absent keys missing), scanning left to right. Keys are
// resolved in document order, so unknown attributes and duplicate keys
// within one object are rejected with the offending name. The scanner is
// left just past the closing '}'; trailing-data policy is the caller's.
func (d *rowDecoder) parseObject(s *lineScanner) error {
	for j := range d.rowBuf {
		d.rowBuf[j] = Missing
	}
	d.gen++
	s.skipSpace()
	if !s.eat('{') {
		return s.syntaxErr("'{'")
	}
	s.skipSpace()
	if s.eat('}') {
		return nil
	}
	for {
		key, err := s.scanString()
		if err != nil {
			return err
		}
		j, ok := d.byName[string(key)]
		if !ok {
			return fmt.Errorf("unknown attribute %q", key)
		}
		if d.seen[j] == d.gen {
			return fmt.Errorf("duplicate attribute %q", key)
		}
		d.seen[j] = d.gen
		s.skipSpace()
		if !s.eat(':') {
			return s.syntaxErr("':'")
		}
		if err := d.scanValue(s, j); err != nil {
			return err
		}
		s.skipSpace()
		if s.eat(',') {
			s.skipSpace()
			continue
		}
		if s.eat('}') {
			return nil
		}
		return s.syntaxErr("',' or '}'")
	}
}

// parseLine decodes one NDJSON object into rowBuf via the shared row
// decoder, enforcing the line rule that nothing but whitespace may follow
// the object.
func (r *NDJSONBatchReader) parseLine(line []byte) error {
	s := lineScanner{buf: line}
	if err := r.dec.parseObject(&s); err != nil {
		return fmt.Errorf("data: NDJSON row %d: %v", r.row, err)
	}
	s.skipSpace()
	if s.pos != len(s.buf) {
		return fmt.Errorf("data: NDJSON row %d: trailing data %q after object", r.row, s.buf[s.pos:])
	}
	return nil
}

// scanValue consumes one value and stores attribute j's column value in
// rowBuf (null leaves the missing marker in place). Value conventions per
// kind match the documented feed format: numbers for interval attributes
// (or a parsable numeric string), level names for nominal attributes
// (unseen names are interned as new levels), and 0/1, true/false or the
// strings "0"/"1"/"true"/"false"/"yes"/"no" for binary attributes.
func (d *rowDecoder) scanValue(s *lineScanner, j int) error {
	s.skipSpace()
	at := &d.attrs[j]
	if s.pos >= len(s.buf) {
		return s.syntaxErr("a value")
	}
	switch c := s.buf[s.pos]; {
	case c == '"':
		raw, err := s.scanString()
		if err != nil {
			return err
		}
		switch at.Kind {
		case Nominal:
			idx, ok := d.levelIndex[j][string(raw)]
			if !ok {
				idx = len(at.Levels)
				at.Levels = append(at.Levels, string(raw))
				d.levelIndex[j][string(raw)] = idx
			}
			d.rowBuf[j] = float64(idx)
		case Binary:
			v, err := parseBinaryWord(raw)
			if err != nil {
				return fmt.Errorf("binary attribute %q got %q", at.Name, raw)
			}
			d.rowBuf[j] = v
		default:
			f, err := strconv.ParseFloat(string(raw), 64)
			if err != nil {
				return fmt.Errorf("interval attribute %q got %q", at.Name, raw)
			}
			d.rowBuf[j] = f
		}
	case c == '-' || (c >= '0' && c <= '9'):
		v, err := s.scanNumber()
		if err != nil {
			return err
		}
		switch at.Kind {
		case Nominal:
			return fmt.Errorf("nominal attribute %q wants a level name, got number %v", at.Name, v)
		case Binary:
			if v != 0 && v != 1 {
				return fmt.Errorf("binary attribute %q got %v", at.Name, v)
			}
		}
		d.rowBuf[j] = v
	case c == 't' || c == 'f':
		word := "true"
		v := 1.0
		if c == 'f' {
			word, v = "false", 0
		}
		if err := s.scanLiteral(word); err != nil {
			return err
		}
		if at.Kind != Binary {
			return fmt.Errorf("attribute %q is %s, got a boolean", at.Name, at.Kind)
		}
		d.rowBuf[j] = v
	case c == 'n':
		return s.scanLiteral("null") // missing: rowBuf keeps its marker
	case c == '{':
		return fmt.Errorf("attribute %q has unsupported value type object", at.Name)
	case c == '[':
		return fmt.Errorf("attribute %q has unsupported value type array", at.Name)
	default:
		return s.syntaxErr("a value")
	}
	return nil
}

// parseBinaryWord maps the accepted binary string forms to 0/1.
func parseBinaryWord(raw []byte) (float64, error) {
	switch len(raw) {
	case 1:
		switch raw[0] {
		case '0':
			return 0, nil
		case '1':
			return 1, nil
		}
	case 2:
		if lowerEq(raw, "no") {
			return 0, nil
		}
	case 3:
		if lowerEq(raw, "yes") {
			return 1, nil
		}
	case 4:
		if lowerEq(raw, "true") {
			return 1, nil
		}
	case 5:
		if lowerEq(raw, "false") {
			return 0, nil
		}
	}
	return 0, fmt.Errorf("not a binary word")
}

// lowerEq reports whether raw equals the lowercase word ASCII
// case-insensitively.
func lowerEq(raw []byte, word string) bool {
	for i := 0; i < len(word); i++ {
		if raw[i]|0x20 != word[i] {
			return false
		}
	}
	return true
}

const hexDigits = "0123456789abcdef"

// AppendJSONString appends the JSON string encoding of s (quotes
// included). It exists because strconv.AppendQuote emits Go escapes —
// \x7f for DEL, \U000e0000 for unprintable astral runes — that no JSON
// parser accepts, so any writer quoting attribute names or nominal levels
// with it produces lines its own reader rejects. Here quotes and
// backslashes are escaped, control characters take their \u00XX (or
// shorthand) form, every other valid rune is emitted raw, and invalid
// UTF-8 collapses to U+FFFD exactly as encoding/json does.
func AppendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			switch {
			case c == '"':
				buf = append(buf, '\\', '"')
			case c == '\\':
				buf = append(buf, '\\', '\\')
			case c >= 0x20:
				buf = append(buf, c)
			case c == '\n':
				buf = append(buf, '\\', 'n')
			case c == '\r':
				buf = append(buf, '\\', 'r')
			case c == '\t':
				buf = append(buf, '\\', 't')
			default:
				buf = append(buf, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			buf = utf8.AppendRune(buf, utf8.RuneError)
			i++
			continue
		}
		buf = append(buf, s[i:i+size]...)
		i += size
	}
	return append(buf, '"')
}
