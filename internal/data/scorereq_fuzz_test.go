package data

import (
	"math"
	"strconv"
	"testing"
	"unicode/utf8"
)

// FuzzScoreRequest drives the hand-rolled /score request parser with
// arbitrary bodies against the same every-kind schema as
// FuzzNDJSONBatchReader. The contract: the parser never panics (it parses
// or rejects cleanly — duplicate keys, trailing data and over-deep
// nesting are rejections, not crashes); an accepted request survives a
// re-encode -> re-parse round-trip with the model name, batch shape and
// every cell intact; and neither the caller's schema nor the interned
// level set is disturbed by re-parsing the parser's own output.
func FuzzScoreRequest(f *testing.F) {
	seeds := []string{
		// Well-formed requests: every kind, omitted keys, nulls, numeric
		// strings, string booleans, fresh nominal levels, null segments.
		`{"model":"m","segments":[{"x":1.5,"s":"a","flag":true},{"x":null,"s":"c"},{}]}`,
		`{"model":"m","segments":[{"x":"3.25","flag":"yes"},{"flag":"0"}]}`,
		`{"model":"m","segments":[{"x":"NaN"},{"x":"Inf"},{"x":1e308},{"x":-0}]}`,
		`{"model":"m","segments":[{"s":"?"},{"s":""},{"s":"li\"ne"},null]}`,
		`{"segments":[{"x":9}],"model":"m"}`,
		"\n {\"model\" : \"m\" ,\n\t\"segments\" : [ { \"x\" : 2e1 } ] } \n",
		// Rejects: structural problems, semantic problems, empty batches.
		`{}`,
		`{"model":""}`,
		`{"model":null,"segments":[{"x":1}]}`,
		`{"model":"m","segments":[]}`,
		`{"model":"m","segments":null}`,
		`{"model":"m","segments":[5]}`,
		`{"model":"m","segments":{"x":1}}`,
		`{"model":"m","segments":[{"typo":1}]}`,
		`{"model":"m","segments":[{"s":3}]}`,
		`{"model":"m","segments":[{"flag":2}]}`,
		`{"model":"m","segments":[{"x":{"nested":[1,{"deep":true}]}}]}`,
		`{not json`,
		// Duplicate keys at both levels; trailing data; unknown fields.
		`{"model":"m","model":"m2","segments":[{"x":1}]}`,
		`{"model":"m","segments":[],"segments":[{"x":1}]}`,
		`{"model":"m","segments":[{"x":1,"x":2}]}`,
		`{"model":"m","segments":[{"x":1}]} extra`,
		`{"model":"m","segments":[{"x":1}]}{"model":"m"}`,
		`{"wat":1,"model":"m"}`,
		// Over the fuzz segment limit; deep garbage.
		`{"model":"m","segments":[{},{},{},{},{},{},{},{},{},{}]}`,
		`{"model":"m","segments":[{"x":[[[[[[[[[[[[[[[[[[1]]]]]]]]]]]]]]]]]]}]}`,
		// Escapes in the model name and level names.
		`{"model":"😀","segments":[{"s":"\ud800"}]}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	schema := []Attribute{
		{Name: "x", Kind: Interval},
		{Name: "s", Kind: Nominal, Levels: []string{"a", "b"}},
		{Name: "flag", Kind: Binary},
	}
	const maxSegments = 8
	f.Fuzz(func(t *testing.T, in string) {
		p := NewScoreRequestParser(schema)
		resolve := func(string) (*ScoreRequestParser, error) { return p, nil }
		model, b, err := ParseScoreRequest([]byte(in), maxSegments, resolve)
		// The caller's schema must never be mutated by level growth.
		if len(schema[1].Levels) != 2 {
			t.Fatalf("parser mutated the caller's schema: %v", schema[1].Levels)
		}
		if err != nil {
			return // rejected inputs only need to fail cleanly
		}
		if model == "" || !utf8.ValidString(model) {
			t.Fatalf("accepted model %q", model)
		}
		if b.Len() < 1 || b.Len() > maxSegments {
			t.Fatalf("accepted batch of %d rows with limit %d", b.Len(), maxSegments)
		}
		attrs := b.Attrs()
		rows := make([][]float64, b.Len())
		for i := range rows {
			rows[i] = make([]float64, len(attrs))
			for j := range attrs {
				rows[i][j] = b.At(i, j)
			}
		}
		interned := p.InternedLevels()

		// Re-encode the decoded batch as a canonical request body and
		// re-parse it with the same parser: the level set is already
		// interned, so shape, model and every cell must come back exactly.
		body := append([]byte(`{"model":`), AppendJSONString(nil, model)...)
		body = append(body, `,"segments":[`...)
		for i, row := range rows {
			if i > 0 {
				body = append(body, ',')
			}
			body = append(body, '{')
			first := true
			for j, v := range row {
				if IsMissing(v) {
					continue
				}
				if !first {
					body = append(body, ',')
				}
				first = false
				body = append(body, AppendJSONString(nil, attrs[j].Name)...)
				body = append(body, ':')
				switch attrs[j].Kind {
				case Nominal:
					body = append(body, AppendJSONString(nil, attrs[j].Levels[int(v)])...)
				case Binary:
					if v == 1 {
						body = append(body, `true`...)
					} else {
						body = append(body, `false`...)
					}
				default:
					if math.IsInf(v, 0) {
						// Infinities only arrive as quoted numbers and must
						// leave the same way — bare Inf is not JSON.
						body = strconv.AppendQuote(body, strconv.FormatFloat(v, 'g', -1, 64))
					} else {
						body = strconv.AppendFloat(body, v, 'g', -1, 64)
					}
				}
			}
			body = append(body, '}')
		}
		body = append(body, `]}`...)

		model2, b2, err := ParseScoreRequest(body, maxSegments, resolve)
		if err != nil {
			t.Fatalf("round-trip rejected its own output: %v\ninput: %q\nwritten: %q", err, in, body)
		}
		if model2 != model {
			t.Fatalf("model %q -> %q", model, model2)
		}
		if b2.Len() != len(rows) {
			t.Fatalf("round-trip shape %d rows, want %d", b2.Len(), len(rows))
		}
		if p.InternedLevels() != interned {
			t.Fatalf("round-trip grew the level set %d -> %d", interned, p.InternedLevels())
		}
		for i, row := range rows {
			for j, v := range row {
				w := b2.At(i, j)
				if IsMissing(v) != IsMissing(w) || (!IsMissing(v) && v != w) {
					t.Fatalf("cell (%d,%d) %v -> %v\ninput: %q\nwritten: %q", i, j, v, w, in, body)
				}
			}
		}
	})
}
