package data

import (
	"math"
	"strings"
	"testing"
)

func TestSummarizeIntervalStatistics(t *testing.T) {
	d := NewBuilder("stats").
		Interval("x").
		Row(1).Row(2).Row(3).Row(4).Row(Missing).
		Build()
	s := d.Summarize()[0]
	if s.N != 4 || s.Missing != 1 {
		t.Fatalf("n=%d missing=%d, want 4 and 1", s.N, s.Missing)
	}
	if s.Mean != 2.5 {
		t.Fatalf("mean = %v", s.Mean)
	}
	// Sample standard deviation of {1,2,3,4}.
	if want := math.Sqrt(5.0 / 3.0); math.Abs(s.StdDev-want) > 1e-12 {
		t.Fatalf("sd = %v, want %v", s.StdDev, want)
	}
	if s.Min != 1 || s.Max != 4 {
		t.Fatalf("range = [%v, %v]", s.Min, s.Max)
	}
	// A symmetric sample has zero skewness.
	if math.Abs(s.Skewness) > 1e-12 {
		t.Fatalf("skew = %v, want 0", s.Skewness)
	}
}

func TestSummarizeSkewDirection(t *testing.T) {
	d := NewBuilder("skewed").
		Interval("x").
		Row(1).Row(1).Row(1).Row(1).Row(50).
		Build()
	if s := d.Summarize()[0]; s.Skewness <= 0 {
		t.Fatalf("right-tailed sample has skew %v, want > 0", s.Skewness)
	}
}

func TestSummarizeNominalLevelCounts(t *testing.T) {
	d := NewBuilder("levels").
		Nominal("surface", "seal", "gravel", "concrete").
		Row(0).Row(1).Row(0).Row(Missing).Row(0).
		Build()
	s := d.Summarize()[0]
	if s.N != 4 || s.Missing != 1 {
		t.Fatalf("n=%d missing=%d", s.N, s.Missing)
	}
	want := []int{3, 1, 0}
	if len(s.LevelCounts) != len(want) {
		t.Fatalf("level counts = %v", s.LevelCounts)
	}
	for i, c := range want {
		if s.LevelCounts[i] != c {
			t.Fatalf("level %d count = %d, want %d (all: %v)", i, s.LevelCounts[i], c, s.LevelCounts)
		}
	}
}

func TestSummarizeAllMissingColumn(t *testing.T) {
	d := NewBuilder("void").
		Interval("x").
		Row(Missing).Row(Missing).
		Build()
	s := d.Summarize()[0]
	if s.N != 0 || s.Missing != 2 {
		t.Fatalf("n=%d missing=%d", s.N, s.Missing)
	}
	// No values: the statistics stay at their zero values, not NaN.
	if s.Mean != 0 || s.StdDev != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty-column stats = %+v", s)
	}
}

func TestSummarizeEveryAttribute(t *testing.T) {
	d := sample()
	sums := d.Summarize()
	if len(sums) != d.NumAttrs() {
		t.Fatalf("summarized %d attributes, dataset has %d", len(sums), d.NumAttrs())
	}
	for j, s := range sums {
		if s.Attribute.Name != d.Attr(j).Name {
			t.Fatalf("summary %d is for %q, want %q", j, s.Attribute.Name, d.Attr(j).Name)
		}
		if s.N+s.Missing != d.Len() {
			t.Fatalf("attribute %q: n=%d missing=%d does not cover %d instances", s.Attribute.Name, s.N, s.Missing, d.Len())
		}
	}
}

func TestDatasetStringReport(t *testing.T) {
	d := sample()
	out := d.String()
	if !strings.Contains(out, "dataset") || !strings.Contains(out, "instances") {
		t.Fatalf("report header missing: %q", out)
	}
	for _, a := range d.Attrs() {
		if !strings.Contains(out, a.Name) {
			t.Fatalf("report missing attribute %q:\n%s", a.Name, out)
		}
	}
	// Nominal rows render level counts, interval rows render ranges.
	if !strings.Contains(out, "levels=") || !strings.Contains(out, "range=[") {
		t.Fatalf("report rows malformed:\n%s", out)
	}
}
