package data

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV drives the dataset loader with arbitrary byte streams. Two
// properties must hold for every input: the loader never panics (it
// either parses or returns an error), and anything it accepts survives a
// WriteCSV -> ReadCSV round-trip with its shape (and trimmed schema)
// intact.
func FuzzReadCSV(f *testing.F) {
	seeds := []string{
		// Well-formed mixed kinds with missing values.
		"x,flag:binary,surface:nominal\n1.5,true,seal\n,no,gravel\n?,1,seal\n",
		// UTF-8 BOM in front of the header.
		"\ufeffx:interval,y\n1,2\n",
		// Quoting: embedded commas, quotes and newlines.
		"\"a,b\",c:nominal\n\"1\",\"le,vel\"\n2,\"li\"\"ne\"\n",
		"a:nominal\n\"multi\nline\"\n",
		// Malformed rows: field count mismatch, bad cells, bad kind.
		"x\n1,2\n",
		"x:binary\nmeh\n",
		"x\nabc\n",
		"x:weird\n1\n",
		// Column names containing colons (kind is the last segment).
		"odd:name:interval,plain\n3,4\n",
		// Header only, empty input, bare separators.
		"x,y,z:nominal\n",
		"",
		",,,\n,,,\n",
		// Duplicate names, exotic floats, huge level sets.
		"x,x\n1,2\n",
		"x\nNaN\n",
		"x\n1e308\n",
		"s:nominal\na\nb\nc\nd\ne\nf\ng\nh\n",
		// CRLF line endings and stray whitespace.
		"x:interval,s:nominal\r\n 1 , lvl \r\n",
		// Lone quote / unterminated quote errors from the csv layer.
		"x\n\"unterminated\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		ds, err := ReadCSV("fuzz", strings.NewReader(in))
		if err != nil {
			return // rejected inputs only need to fail cleanly
		}
		for j := 0; j < ds.NumAttrs(); j++ {
			if got := len(ds.Col(j)); got != ds.Len() {
				t.Fatalf("column %d has %d values for %d instances", j, got, ds.Len())
			}
		}
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted dataset failed to serialize: %v", err)
		}
		back, err := ReadCSV("fuzz2", &buf)
		if err != nil {
			t.Fatalf("round-trip rejected its own output: %v\ninput: %q\nwritten: %q", err, in, buf.String())
		}
		if back.Len() != ds.Len() || back.NumAttrs() != ds.NumAttrs() {
			t.Fatalf("round-trip shape %dx%d, want %dx%d", back.Len(), back.NumAttrs(), ds.Len(), ds.NumAttrs())
		}
		for j := 0; j < ds.NumAttrs(); j++ {
			a, b := ds.Attr(j), back.Attr(j)
			if b.Kind != a.Kind {
				t.Fatalf("column %d kind %v -> %v", j, a.Kind, b.Kind)
			}
			// WriteCSV emits the name verbatim and ReadCSV trims it, so the
			// schema is stable up to edge whitespace.
			if b.Name != strings.TrimSpace(a.Name) {
				t.Fatalf("column %d name %q -> %q", j, a.Name, b.Name)
			}
			// Values: interval cells round-trip exactly (FormatFloat 'g' -1),
			// missing stays missing; nominal levels may collapse onto the
			// missing marker when a level name reads back as one (e.g. "?").
			if a.Kind != Interval {
				continue
			}
			for i := 0; i < ds.Len(); i++ {
				v, w := ds.At(i, j), back.At(i, j)
				if IsMissing(v) != IsMissing(w) || (!IsMissing(v) && v != w) {
					t.Fatalf("cell (%d,%d) %v -> %v", i, j, v, w)
				}
			}
		}
	})
}
