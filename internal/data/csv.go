package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The CSV layout is self-describing: the header cell for each column is
// "name:kind" (kind omitted means interval), nominal cells carry the level
// name, binary cells carry 0/1/true/false, and missing values are empty
// cells or "?" (the WEKA convention the original study would have used).

// WriteCSV serializes the dataset.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(d.attrs))
	for j, a := range d.attrs {
		header[j] = a.Name + ":" + a.Kind.String()
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("data: writing CSV header: %w", err)
	}
	record := make([]string, len(d.attrs))
	for i := 0; i < d.n; i++ {
		for j, a := range d.attrs {
			v := d.cols[j][i]
			switch {
			case IsMissing(v):
				record[j] = "?"
			case a.Kind == Nominal:
				record[j] = a.Levels[int(v)]
			case a.Kind == Binary:
				record[j] = strconv.Itoa(int(v))
			default:
				record[j] = strconv.FormatFloat(v, 'g', -1, 64)
			}
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("data: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV. Nominal level sets are
// taken from the data when the schema header declares kind "nominal".
// The kind annotation is the suffix after the last colon, so column names
// containing colons survive a WriteCSV/ReadCSV round-trip (WriteCSV always
// appends a valid kind). A UTF-8 byte-order mark in front of the header is
// tolerated.
func ReadCSV(name string, r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("data: reading CSV header: %w", err)
	}
	if len(header) > 0 {
		header[0] = strings.TrimPrefix(header[0], "\ufeff")
	}
	attrs := make([]Attribute, len(header))
	levelIndex := make([]map[string]int, len(header))
	for j, h := range header {
		attrName, kind := h, "interval"
		if cut := strings.LastIndex(h, ":"); cut >= 0 {
			attrName, kind = h[:cut], strings.TrimSpace(h[cut+1:])
		}
		attrs[j].Name = strings.TrimSpace(attrName)
		k, err := KindFromString(kind)
		if err != nil {
			return nil, fmt.Errorf("data: column %q has unknown kind %q", attrs[j].Name, kind)
		}
		attrs[j].Kind = k
		if k == Nominal {
			levelIndex[j] = make(map[string]int)
		}
	}
	cols := make([][]float64, len(header))
	n := 0
	for {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("data: reading CSV row %d: %w", n, err)
		}
		if len(record) != len(header) {
			return nil, fmt.Errorf("data: CSV row %d has %d fields, header has %d", n, len(record), len(header))
		}
		for j, cell := range record {
			cell = strings.TrimSpace(cell)
			if cell == "" || cell == "?" {
				cols[j] = append(cols[j], Missing)
				continue
			}
			switch attrs[j].Kind {
			case Nominal:
				idx, ok := levelIndex[j][cell]
				if !ok {
					idx = len(attrs[j].Levels)
					attrs[j].Levels = append(attrs[j].Levels, cell)
					levelIndex[j][cell] = idx
				}
				cols[j] = append(cols[j], float64(idx))
			case Binary:
				switch strings.ToLower(cell) {
				case "0", "false", "no":
					cols[j] = append(cols[j], 0)
				case "1", "true", "yes":
					cols[j] = append(cols[j], 1)
				default:
					return nil, fmt.Errorf("data: CSV row %d: binary column %q got %q", n, attrs[j].Name, cell)
				}
			default:
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("data: CSV row %d: interval column %q got %q", n, attrs[j].Name, cell)
				}
				cols[j] = append(cols[j], v)
			}
		}
		n++
	}
	return &Dataset{name: name, attrs: attrs, cols: cols, n: n}, nil
}
