package data

import (
	"io"
)

// The CSV layout is self-describing: the header cell for each column is
// "name:kind" (kind omitted means interval), nominal cells carry the level
// name, binary cells carry 0/1/true/false, and missing values are empty
// cells or "?" (the WEKA convention the original study would have used).
// The full format, including the colon and BOM rules, is documented in
// docs/DATA.md. Both directions are implemented by the streaming layer in
// stream.go; the functions here are the in-memory conveniences.

// WriteCSV serializes the dataset.
func (d *Dataset) WriteCSV(w io.Writer) error {
	return Copy(NewCSVBatchWriter(w, d.attrs), d.Stream(DefaultChunkSize))
}

// ReadCSV parses a dataset written by WriteCSV. Nominal level sets are
// taken from the data when the schema header declares kind "nominal".
// The kind annotation is the suffix after the last colon, so column names
// containing colons survive a WriteCSV/ReadCSV round-trip (WriteCSV always
// appends a valid kind). A UTF-8 byte-order mark in front of the header is
// tolerated. ReadCSV materializes the whole table; for out-of-core access
// use NewCSVBatchReader, which this function is ReadAll over.
func ReadCSV(name string, r io.Reader) (*Dataset, error) {
	br, err := NewCSVBatchReader(r, DefaultChunkSize)
	if err != nil {
		return nil, err
	}
	return ReadAll(name, br)
}
