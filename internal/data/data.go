// Package data implements the dataset engine underneath the road-crash
// study: a columnar table of interval and nominal attributes with explicit
// missing values, plus the preparation operations the paper's CRISP-DM data
// phase needs — filtering, train/validation splits, stratified sampling,
// under-sampling, k-fold partitioning and binary-target derivation from
// crash counts.
//
// Values are stored as float64 columns. Nominal values hold the index of
// their level; missing values are NaN for every attribute kind, matching
// the paper's choice to keep missing values as first-class data ("the
// missing values were treated as valid data").
package data

import (
	"fmt"
	"math"
)

// Kind classifies an attribute the way the paper's modeling tools do.
type Kind int

const (
	// Interval is a numeric attribute used as-is (the paper avoided
	// discretization: "interval values were retained").
	Interval Kind = iota
	// Nominal is a categorical attribute with an enumerated level set.
	Nominal
	// Binary is a two-class logical target or flag (false=0, true=1).
	Binary
)

// String returns the attribute kind name.
func (k Kind) String() string {
	switch k {
	case Interval:
		return "interval"
	case Nominal:
		return "nominal"
	case Binary:
		return "binary"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// KindFromString parses a kind name produced by Kind.String — the single
// inverse shared by the CSV header and every model-serialization decoder.
func KindFromString(s string) (Kind, error) {
	switch s {
	case "interval":
		return Interval, nil
	case "nominal":
		return Nominal, nil
	case "binary":
		return Binary, nil
	}
	return 0, fmt.Errorf("data: unknown attribute kind %q", s)
}

// Attribute describes one column of a dataset.
type Attribute struct {
	Name   string
	Kind   Kind
	Levels []string // level names for Nominal attributes
}

// Missing is the canonical missing-value marker.
var Missing = math.NaN()

// IsMissing reports whether v is the missing marker.
func IsMissing(v float64) bool { return math.IsNaN(v) }

// Dataset is an immutable-by-convention columnar table. Mutating methods
// return new datasets; the underlying column slices are copied on write.
type Dataset struct {
	name  string
	attrs []Attribute
	cols  [][]float64
	n     int
}

// Builder assembles a Dataset column-schema first, then row by row.
type Builder struct {
	name  string
	attrs []Attribute
	index map[string]int
	cols  [][]float64
	n     int
}

// NewBuilder starts a dataset with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, index: make(map[string]int)}
}

// Interval declares an interval attribute. It panics on duplicate names.
func (b *Builder) Interval(name string) *Builder {
	return b.attr(Attribute{Name: name, Kind: Interval})
}

// Nominal declares a nominal attribute with its level set.
func (b *Builder) Nominal(name string, levels ...string) *Builder {
	return b.attr(Attribute{Name: name, Kind: Nominal, Levels: append([]string(nil), levels...)})
}

// Binary declares a binary attribute.
func (b *Builder) Binary(name string) *Builder { return b.attr(Attribute{Name: name, Kind: Binary}) }

func (b *Builder) attr(a Attribute) *Builder {
	if b.n > 0 {
		panic("data: cannot add attributes after rows")
	}
	if _, dup := b.index[a.Name]; dup {
		panic(fmt.Sprintf("data: duplicate attribute %q", a.Name))
	}
	b.index[a.Name] = len(b.attrs)
	b.attrs = append(b.attrs, a)
	b.cols = append(b.cols, nil)
	return b
}

// Row appends one instance. values must have one entry per attribute, in
// declaration order; use Missing (NaN) for absent values. Binary values
// must be 0, 1 or missing; nominal values must be valid level indices or
// missing.
func (b *Builder) Row(values ...float64) *Builder {
	if len(values) != len(b.attrs) {
		panic(fmt.Sprintf("data: row has %d values, schema has %d attributes", len(values), len(b.attrs)))
	}
	for i, v := range values {
		if IsMissing(v) {
			b.cols[i] = append(b.cols[i], Missing)
			continue
		}
		switch a := b.attrs[i]; a.Kind {
		case Binary:
			if v != 0 && v != 1 {
				panic(fmt.Sprintf("data: binary attribute %q got %v", a.Name, v))
			}
		case Nominal:
			iv := int(v)
			if float64(iv) != v || iv < 0 || iv >= len(a.Levels) {
				panic(fmt.Sprintf("data: nominal attribute %q got invalid level %v", a.Name, v))
			}
		}
		b.cols[i] = append(b.cols[i], v)
	}
	b.n++
	return b
}

// Build finalizes the dataset. The builder must not be reused afterwards.
func (b *Builder) Build() *Dataset {
	return &Dataset{name: b.name, attrs: b.attrs, cols: b.cols, n: b.n}
}

// SchemaDataset builds a zero-instance dataset carrying only the given
// attribute schema. Decoded model artifacts use it to restore the schema
// reference that rule rendering and row layout need without shipping any
// training data.
func SchemaDataset(name string, attrs []Attribute) *Dataset {
	copied := make([]Attribute, len(attrs))
	for i, a := range attrs {
		copied[i] = Attribute{Name: a.Name, Kind: a.Kind, Levels: append([]string(nil), a.Levels...)}
	}
	return &Dataset{name: name, attrs: copied, cols: make([][]float64, len(copied))}
}

// Name returns the dataset's name.
func (d *Dataset) Name() string { return d.name }

// WithName returns a shallow copy under a new name.
func (d *Dataset) WithName(name string) *Dataset {
	c := *d
	c.name = name
	return &c
}

// Len returns the instance count.
func (d *Dataset) Len() int { return d.n }

// NumAttrs returns the attribute count.
func (d *Dataset) NumAttrs() int { return len(d.attrs) }

// Attrs returns the attribute schema. The caller must not modify it.
func (d *Dataset) Attrs() []Attribute { return d.attrs }

// Attr returns attribute j.
func (d *Dataset) Attr(j int) Attribute { return d.attrs[j] }

// AttrIndex returns the index of the named attribute, or an error.
func (d *Dataset) AttrIndex(name string) (int, error) {
	for j, a := range d.attrs {
		if a.Name == name {
			return j, nil
		}
	}
	return 0, fmt.Errorf("data: dataset %q has no attribute %q", d.name, name)
}

// MustAttrIndex is AttrIndex for static attribute names; it panics when the
// attribute does not exist.
func (d *Dataset) MustAttrIndex(name string) int {
	j, err := d.AttrIndex(name)
	if err != nil {
		panic(err)
	}
	return j
}

// Col returns column j. The caller must not modify it.
func (d *Dataset) Col(j int) []float64 { return d.cols[j] }

// ColByName returns the named column.
func (d *Dataset) ColByName(name string) ([]float64, error) {
	j, err := d.AttrIndex(name)
	if err != nil {
		return nil, err
	}
	return d.cols[j], nil
}

// At returns the value of attribute j for instance i.
func (d *Dataset) At(i, j int) float64 { return d.cols[j][i] }

// Row copies instance i into dst (allocated when nil) and returns it.
func (d *Dataset) Row(i int, dst []float64) []float64 {
	if cap(dst) < len(d.attrs) {
		dst = make([]float64, len(d.attrs))
	}
	dst = dst[:len(d.attrs)]
	for j := range d.attrs {
		dst[j] = d.cols[j][i]
	}
	return dst
}

// Subset returns a new dataset holding the given instance indices, in order.
// Indices may repeat (useful for bootstrap resampling).
func (d *Dataset) Subset(name string, idx []int) *Dataset {
	cols := make([][]float64, len(d.cols))
	for j := range d.cols {
		col := make([]float64, len(idx))
		src := d.cols[j]
		for k, i := range idx {
			col[k] = src[i]
		}
		cols[j] = col
	}
	return &Dataset{name: name, attrs: d.attrs, cols: cols, n: len(idx)}
}

// Filter returns the subset of instances for which keep returns true.
func (d *Dataset) Filter(name string, keep func(i int) bool) *Dataset {
	var idx []int
	for i := 0; i < d.n; i++ {
		if keep(i) {
			idx = append(idx, i)
		}
	}
	return d.Subset(name, idx)
}

// DropAttrs returns a dataset without the named attributes. Unknown names
// are reported as an error so experiment configs fail loudly.
func (d *Dataset) DropAttrs(names ...string) (*Dataset, error) {
	drop := make(map[int]bool, len(names))
	for _, name := range names {
		j, err := d.AttrIndex(name)
		if err != nil {
			return nil, err
		}
		drop[j] = true
	}
	var attrs []Attribute
	var cols [][]float64
	for j := range d.attrs {
		if drop[j] {
			continue
		}
		attrs = append(attrs, d.attrs[j])
		cols = append(cols, d.cols[j])
	}
	return &Dataset{name: d.name, attrs: attrs, cols: cols, n: d.n}, nil
}

// KeepAttrs returns a dataset with only the named attributes, in the given
// order.
func (d *Dataset) KeepAttrs(names ...string) (*Dataset, error) {
	var attrs []Attribute
	var cols [][]float64
	for _, name := range names {
		j, err := d.AttrIndex(name)
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, d.attrs[j])
		cols = append(cols, d.cols[j])
	}
	return &Dataset{name: d.name, attrs: attrs, cols: cols, n: d.n}, nil
}

// AppendColumn returns a dataset with an extra column. values must have one
// entry per instance.
func (d *Dataset) AppendColumn(attr Attribute, values []float64) (*Dataset, error) {
	if len(values) != d.n {
		return nil, fmt.Errorf("data: column %q has %d values, dataset has %d instances", attr.Name, len(values), d.n)
	}
	for _, a := range d.attrs {
		if a.Name == attr.Name {
			return nil, fmt.Errorf("data: attribute %q already exists", attr.Name)
		}
	}
	attrs := append(append([]Attribute(nil), d.attrs...), attr)
	cols := append(append([][]float64(nil), d.cols...), append([]float64(nil), values...))
	return &Dataset{name: d.name, attrs: attrs, cols: cols, n: d.n}, nil
}

// Concat stacks other below d. Schemas must match exactly.
func (d *Dataset) Concat(name string, other *Dataset) (*Dataset, error) {
	if len(d.attrs) != len(other.attrs) {
		return nil, fmt.Errorf("data: concat schema mismatch: %d vs %d attributes", len(d.attrs), len(other.attrs))
	}
	for j := range d.attrs {
		if d.attrs[j].Name != other.attrs[j].Name || d.attrs[j].Kind != other.attrs[j].Kind {
			return nil, fmt.Errorf("data: concat schema mismatch at attribute %d (%q vs %q)", j, d.attrs[j].Name, other.attrs[j].Name)
		}
	}
	cols := make([][]float64, len(d.cols))
	for j := range d.cols {
		col := make([]float64, 0, d.n+other.n)
		col = append(col, d.cols[j]...)
		col = append(col, other.cols[j]...)
		cols[j] = col
	}
	return &Dataset{name: name, attrs: d.attrs, cols: cols, n: d.n + other.n}, nil
}

// MissingCount returns the number of missing values in column j.
func (d *Dataset) MissingCount(j int) int {
	c := 0
	for _, v := range d.cols[j] {
		if IsMissing(v) {
			c++
		}
	}
	return c
}
