package data

import (
	"io"
	"strings"
	"testing"
)

// readOne parses a single NDJSON line against the given schema and
// returns the row values (or the parse error).
func readOne(t *testing.T, schema []Attribute, line string) ([]float64, []Attribute, error) {
	t.Helper()
	br := NewNDJSONBatchReader(strings.NewReader(line), schema, 4)
	b, err := br.Next()
	if err != nil {
		return nil, nil, err
	}
	if b.Len() != 1 {
		t.Fatalf("parsed %d rows from %q", b.Len(), line)
	}
	row := make([]float64, len(schema))
	for j := range row {
		row[j] = b.At(0, j)
	}
	return row, br.Attrs(), nil
}

// TestNDJSONStringDecoding pins the scanner's JSON string semantics
// against encoding/json's: every escape form, surrogate pairs, lone
// surrogates and invalid UTF-8 collapsing to U+FFFD, raw non-ASCII
// passing through.
func TestNDJSONStringDecoding(t *testing.T) {
	schema := []Attribute{{Name: "s", Kind: Nominal}}
	cases := map[string]string{
		`{"s": "plain"}`:                     "plain",
		`{"s": "a\"b\\c\/d"}`:                "a\"b\\c/d",
		`{"s": "\b\f\n\r\t"}`:                "\b\f\n\r\t",
		`{"s": "\u0041\u00e9"}`:              "Aé",
		`{"s": "\ud83d\ude00"}`:              "😀",
		`{"s": "\ud800"}`:                    "\uFFFD", // lone high surrogate
		`{"s": "\ud800x"}`:                   "\uFFFDx",
		`{"s": "\udc00\ud800"}`:              "\uFFFD\uFFFD", // wrong order
		"{\"s\": \"caf\u00e9\"}":             "café",         // raw UTF-8
		"{\"s\": \"\x7f\"}":                  "\x7f",         // raw DEL is legal JSON
		"{\"s\": \"a\xffb\"}":                "a\uFFFDb",     // invalid UTF-8 byte
		`{"s": "mixed\u0020end"}`:            "mixed end",
		"{\"s\": \"\xe2\x82\xacok\"}":        "€ok",
		"{\"s\": \"esc\\n\xe2\x82\xac\x7f\"}": "esc\n€\x7f",
	}
	for line, want := range cases {
		row, attrs, err := readOne(t, schema, line)
		if err != nil {
			t.Errorf("%q: %v", line, err)
			continue
		}
		if got := attrs[0].Levels[int(row[0])]; got != want {
			t.Errorf("%q: level %q, want %q", line, got, want)
		}
	}
}

// TestNDJSONStringErrors pins the scanner's reject set for strings and
// structure: invalid escapes, truncated escapes, raw control characters,
// unterminated strings, bad separators and bad literals all fail cleanly.
func TestNDJSONStringErrors(t *testing.T) {
	schema := []Attribute{
		{Name: "s", Kind: Nominal},
		{Name: "x", Kind: Interval},
		{Name: "flag", Kind: Binary},
	}
	cases := []string{
		`{"s": "\x41"}`,      // invalid escape
		`{"s": "\u00"}`,      // truncated \u escape
		`{"s": "\uZZZZ"}`,    // non-hex \u digits
		`{"s": "\`,           // escape at end of input
		`{"s": "open`,        // unterminated string (fast path)
		`{"s": "open\n`,      // unterminated after escape (slow path)
		"{\"s\": \"a\x01b\"}", // raw control char (fast path)
		"{\"s\": \"\\n\x01\"}", // raw control char (slow path)
		`{"s" "v"}`,          // missing colon
		`{"s": "v" "x": 1}`,  // missing comma
		`{"x": trueX}`,       // bad literal tail
		`{"x": tru}`,         // truncated literal
		`{"flag": nul}`,      // truncated null
		`{"x": +5}`,          // '+' cannot start a number
		`{"x": 5..5}`,        // malformed number
		`{"x": 01}`,          // leading zero (valid for ParseFloat, not JSON)
		`{"x": 1.}`,          // trailing dot
		`{"x": 1.e5}`,        // exponent after bare dot
		`{"x": .5}`,          // bare leading dot
		`{"x": -}`,           // sign without digits
		`{"x": 1e}`,          // exponent without digits
		`{"x": 1e+}`,         // signed exponent without digits
		`{1: 2}`,             // non-string key
		`["x"]`,              // not an object
		`{"x": 1,}`,          // trailing comma
		`  `,                 // whitespace only (after blank-skip: EOF is fine)
	}
	for _, line := range cases {
		br := NewNDJSONBatchReader(strings.NewReader(line), schema, 4)
		_, err := br.Next()
		if err == nil {
			t.Errorf("%q: expected an error", line)
		} else if err == io.EOF && strings.TrimSpace(line) != "" {
			t.Errorf("%q: got EOF, want a parse error", line)
		}
	}
}

// TestNDJSONValueForms pins the accepted value forms per attribute kind,
// including the string encodings and whitespace tolerance.
func TestNDJSONValueForms(t *testing.T) {
	schema := []Attribute{
		{Name: "x", Kind: Interval},
		{Name: "flag", Kind: Binary},
	}
	for line, want := range map[string][2]float64{
		`{ "x" : -12.5e1 , "flag" : true }`:  {-125, 1},
		`{"x": "3.25", "flag": "YES"}`:       {3.25, 1},
		`{"x": "Inf", "flag": "FALSE"}`:      {Missing, 0}, // Inf stored, checked below
		`{"x": null, "flag": "0"}`:           {Missing, 0},
		`{"flag": "1"}`:                      {Missing, 1},
		`{"flag": "No"}`:                     {Missing, 0},
		`{"flag": false}`:                    {Missing, 0},
	} {
		row, _, err := readOne(t, schema, line)
		if err != nil {
			t.Errorf("%q: %v", line, err)
			continue
		}
		if line == `{"x": "Inf", "flag": "FALSE"}` {
			if !(row[0] > 0 && row[0]*2 == row[0]) {
				t.Errorf("%q: x = %v, want +Inf", line, row[0])
			}
		} else if IsMissing(want[0]) != IsMissing(row[0]) || (!IsMissing(want[0]) && row[0] != want[0]) {
			t.Errorf("%q: x = %v, want %v", line, row[0], want[0])
		}
		if row[1] != want[1] {
			t.Errorf("%q: flag = %v, want %v", line, row[1], want[1])
		}
	}
}

// TestAppendJSONString pins the JSON-safe quoting the batch writers use:
// control characters take \u00XX or shorthand escapes, quotes and
// backslashes escape, valid UTF-8 passes raw, invalid UTF-8 collapses to
// U+FFFD — and every output must parse back to the input through the
// scanner (the round-trip the old strconv quoting broke for DEL).
func TestAppendJSONString(t *testing.T) {
	cases := map[string]string{
		"plain":        `"plain"`,
		`q"b\`:         `"q\"b\\"`,
		"nl\ntab\t":    `"nl\ntab\t"`,
		"cr\r":         `"cr\r"`,
		"\x00\x01\x1f": `"\u0000\u0001\u001f"`,
		"\x7f":         "\"\x7f\"",
		"café€":        `"café€"`,
		"bad\xffbyte":  "\"bad\uFFFDbyte\"",
	}
	schema := []Attribute{{Name: "s", Kind: Nominal}}
	for in, want := range cases {
		got := string(AppendJSONString(nil, in))
		if got != want {
			t.Errorf("AppendJSONString(%q) = %s, want %s", in, got, want)
		}
		// Round-trip through the scanner (invalid UTF-8 already replaced).
		line := `{"s": ` + got + `}`
		row, attrs, err := readOne(t, schema, line)
		if err != nil {
			t.Errorf("%q: wrote unparsable JSON %s: %v", in, got, err)
			continue
		}
		wantBack := strings.ReplaceAll(in, "\xff", "\uFFFD")
		if level := attrs[0].Levels[int(row[0])]; level != wantBack {
			t.Errorf("%q round-tripped to %q", in, level)
		}
	}
}
