package data

import (
	"math"
	"testing"
	"testing/quick"

	"roadcrash/internal/rng"
)

// bigSample builds an unbalanced binary dataset with n instances and the
// given positive count.
func bigSample(n, pos int) *Dataset {
	b := NewBuilder("big").Interval("x").Binary("y").Interval("count")
	for i := 0; i < n; i++ {
		y := 0.0
		count := float64(i % 3)
		if i < pos {
			y = 1
			count = float64(10 + i%20)
		}
		b.Row(float64(i), y, count)
	}
	return b.Build()
}

func TestSplitSizes(t *testing.T) {
	d := bigSample(100, 30)
	train, valid, err := d.Split(rng.New(1), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 70 || valid.Len() != 30 {
		t.Fatalf("split sizes = %d/%d", train.Len(), valid.Len())
	}
}

func TestSplitDisjointAndComplete(t *testing.T) {
	d := bigSample(50, 10)
	train, valid, err := d.Split(rng.New(2), 0.6)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[float64]int{}
	for i := 0; i < train.Len(); i++ {
		seen[train.At(i, 0)]++
	}
	for i := 0; i < valid.Len(); i++ {
		seen[valid.At(i, 0)]++
	}
	if len(seen) != 50 {
		t.Fatalf("union covers %d ids, want 50", len(seen))
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("id %v appears %d times", id, c)
		}
	}
}

func TestSplitErrors(t *testing.T) {
	d := bigSample(10, 2)
	for _, frac := range []float64{0, 1, -0.5, 1.5} {
		if _, _, err := d.Split(rng.New(1), frac); err == nil {
			t.Errorf("frac %v should error", frac)
		}
	}
	tiny := bigSample(2, 1)
	if _, _, err := tiny.Split(rng.New(1), 0.01); err == nil {
		t.Error("empty-side split should error")
	}
}

func TestStratifiedSplitPreservesMix(t *testing.T) {
	d := bigSample(1000, 50) // 5% positive
	target := d.MustAttrIndex("y")
	train, valid, err := d.StratifiedSplit(rng.New(3), 0.7, target)
	if err != nil {
		t.Fatal(err)
	}
	_, trainPos := train.ClassCounts(target)
	_, validPos := valid.ClassCounts(target)
	if trainPos != 35 || validPos != 15 {
		t.Fatalf("positives split %d/%d, want 35/15", trainPos, validPos)
	}
}

func TestStratifiedSplitKeepsTinyMinority(t *testing.T) {
	// 3 positives out of 400: both sides must still see a positive.
	d := bigSample(400, 3)
	target := d.MustAttrIndex("y")
	train, valid, err := d.StratifiedSplit(rng.New(4), 0.7, target)
	if err != nil {
		t.Fatal(err)
	}
	_, trainPos := train.ClassCounts(target)
	_, validPos := valid.ClassCounts(target)
	if trainPos == 0 || validPos == 0 {
		t.Fatalf("minority lost: train=%d valid=%d", trainPos, validPos)
	}
}

func TestStratifiedSplitErrors(t *testing.T) {
	d := bigSample(10, 5)
	if _, _, err := d.StratifiedSplit(rng.New(1), 0, 1); err == nil {
		t.Error("bad fraction should error")
	}
	if _, _, err := d.StratifiedSplit(rng.New(1), 0.5, 99); err == nil {
		t.Error("bad target index should error")
	}
}

func TestKFoldPartition(t *testing.T) {
	d := bigSample(103, 20)
	folds, err := d.KFold(rng.New(5), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 10 {
		t.Fatalf("folds = %d", len(folds))
	}
	validSeen := map[int]int{}
	for _, f := range folds {
		train, valid := f[0], f[1]
		if len(train)+len(valid) != 103 {
			t.Fatalf("fold sizes %d+%d != 103", len(train), len(valid))
		}
		inValid := map[int]bool{}
		for _, i := range valid {
			inValid[i] = true
			validSeen[i]++
		}
		for _, i := range train {
			if inValid[i] {
				t.Fatal("train and valid overlap")
			}
		}
	}
	if len(validSeen) != 103 {
		t.Fatalf("validation folds cover %d instances", len(validSeen))
	}
	for i, c := range validSeen {
		if c != 1 {
			t.Fatalf("instance %d appears in %d validation folds", i, c)
		}
	}
}

func TestKFoldErrors(t *testing.T) {
	d := bigSample(5, 1)
	if _, err := d.KFold(rng.New(1), 1); err == nil {
		t.Error("k=1 should error")
	}
	if _, err := d.KFold(rng.New(1), 6); err == nil {
		t.Error("k>n should error")
	}
}

func TestUndersample(t *testing.T) {
	d := bigSample(1000, 100)
	target := d.MustAttrIndex("y")
	bal, err := d.Undersample(rng.New(6), target, 1)
	if err != nil {
		t.Fatal(err)
	}
	neg, pos := bal.ClassCounts(target)
	if pos != 100 || neg != 100 {
		t.Fatalf("balance = %d/%d", neg, pos)
	}
	bal2, err := d.Undersample(rng.New(6), target, 2)
	if err != nil {
		t.Fatal(err)
	}
	neg2, pos2 := bal2.ClassCounts(target)
	if pos2 != 100 || neg2 != 200 {
		t.Fatalf("ratio-2 balance = %d/%d", neg2, pos2)
	}
}

func TestUndersampleCapsAtMajority(t *testing.T) {
	d := bigSample(100, 45)
	target := d.MustAttrIndex("y")
	bal, err := d.Undersample(rng.New(7), target, 10)
	if err != nil {
		t.Fatal(err)
	}
	if bal.Len() != 100 {
		t.Fatalf("capped undersample len = %d", bal.Len())
	}
}

func TestUndersampleErrors(t *testing.T) {
	d := bigSample(100, 0)
	target := d.MustAttrIndex("y")
	if _, err := d.Undersample(rng.New(1), target, 1); err == nil {
		t.Error("single-class undersample should error")
	}
	if _, err := d.Undersample(rng.New(1), target, 0.5); err == nil {
		t.Error("ratio<1 should error")
	}
	if _, err := d.Undersample(rng.New(1), 99, 1); err == nil {
		t.Error("bad target should error")
	}
}

func TestCountThresholdTarget(t *testing.T) {
	d := NewBuilder("counts").Interval("crashCount").
		Row(0).Row(2).Row(3).Row(8).Row(9).Row(Missing).Build()
	d2, err := d.CountThresholdTarget("crashCount", 2, "cp2")
	if err != nil {
		t.Fatal(err)
	}
	col, err := d2.ColByName("cp2")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 1, 1, 1}
	for i, w := range want {
		if col[i] != w {
			t.Fatalf("cp2[%d] = %v, want %v", i, col[i], w)
		}
	}
	if !IsMissing(col[5]) {
		t.Fatal("missing count should produce missing target")
	}
	if _, err := d.CountThresholdTarget("ghost", 2, "x"); err == nil {
		t.Fatal("unknown count attr should error")
	}
}

// Property: for any threshold, the derived target classes partition the
// non-missing instances and the positive count is monotone non-increasing
// in the threshold — the mechanism behind Table 1.
func TestCountThresholdMonotone(t *testing.T) {
	d := bigSample(500, 120)
	f := func(t1raw, t2raw uint8) bool {
		t1 := int(t1raw % 30)
		t2 := t1 + int(t2raw%10) + 1
		d1, err1 := d.CountThresholdTarget("count", t1, "a")
		d2, err2 := d.CountThresholdTarget("count", t2, "b")
		if err1 != nil || err2 != nil {
			return false
		}
		_, pos1 := d1.ClassCounts(d1.MustAttrIndex("a"))
		_, pos2 := d2.ClassCounts(d2.MustAttrIndex("b"))
		neg1, _ := d1.ClassCounts(d1.MustAttrIndex("a"))
		return pos2 <= pos1 && neg1+pos1 == d.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStandardize(t *testing.T) {
	d := NewBuilder("std").Interval("x").Binary("y").
		Row(1, 0).Row(2, 1).Row(3, 0).Row(Missing, 1).Build()
	std, means, sds := d.Standardize()
	if math.Abs(means[0]-2) > 1e-9 {
		t.Fatalf("mean = %v", means[0])
	}
	col := std.Col(0)
	if math.Abs(col[0]+col[2]) > 1e-9 || col[1] != 0 {
		t.Fatalf("standardized col = %v", col)
	}
	if !IsMissing(col[3]) {
		t.Fatal("missing value should stay missing")
	}
	// Binary column untouched.
	if std.At(1, 1) != 1 {
		t.Fatal("binary column was standardized")
	}
	if sds[1] != 1 {
		t.Fatal("non-interval sd should be 1")
	}
}

func TestStandardizeConstantColumn(t *testing.T) {
	d := NewBuilder("const").Interval("x").Row(5).Row(5).Row(5).Build()
	std, _, sds := d.Standardize()
	if sds[0] != 1 {
		t.Fatalf("constant column sd = %v", sds[0])
	}
	for _, v := range std.Col(0) {
		if v != 0 {
			t.Fatalf("constant column standardized to %v", v)
		}
	}
}

func TestBootstrap(t *testing.T) {
	d := bigSample(50, 10)
	boot := d.Bootstrap(rng.New(8), 200)
	if boot.Len() != 200 {
		t.Fatalf("bootstrap len = %d", boot.Len())
	}
}

func TestClassCountsIgnoresMissing(t *testing.T) {
	d := NewBuilder("cc").Binary("y").Row(0).Row(1).Row(Missing).Build()
	neg, pos := d.ClassCounts(0)
	if neg != 1 || pos != 1 {
		t.Fatalf("counts = %d/%d", neg, pos)
	}
}
