package data

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzNDJSONBatchReader drives the NDJSON feed parser with arbitrary byte
// streams against a schema covering every attribute kind, mirroring
// FuzzReadCSV's contract: the reader never panics (it parses or rejects
// cleanly), and any accepted stream survives a WriteNDJSON -> read
// round-trip with shape and cell values intact — including nominal levels
// interned mid-stream and missing values in every kind.
func FuzzNDJSONBatchReader(f *testing.F) {
	seeds := []string{
		// Well-formed rows of every kind; omitted keys and nulls are missing.
		"{\"x\": 1.5, \"s\": \"a\", \"flag\": true}\n{\"x\": null, \"s\": \"c\"}\n{}\n",
		// Blank lines are skipped; whitespace tolerated.
		"\n  \n{\"x\": 2}\n\n",
		// Numeric strings for interval values, string booleans for binary.
		"{\"x\": \"3.25\", \"flag\": \"yes\"}\n{\"flag\": \"0\"}\n",
		// Exotic floats: NaN string collapses to missing, Inf survives quoted.
		"{\"x\": \"NaN\"}\n{\"x\": \"Inf\"}\n{\"x\": 1e308}\n{\"x\": -0}\n",
		// New nominal levels interned in stream order, odd names included.
		"{\"s\": \"b\"}\n{\"s\": \"?\"}\n{\"s\": \"\"}\n{\"s\": \"li\\\"ne\"}\n",
		// Rejects: unknown key, wrong types, bad binary, malformed JSON.
		"{\"typo\": 1}\n",
		"{\"s\": 3}\n",
		"{\"x\": true}\n",
		"{\"flag\": 2}\n",
		"{\"flag\": \"maybe\"}\n",
		"{not json}\n",
		"[1, 2]\n",
		"{\"x\": {\"nested\": 1}}\n",
		// Trailing garbage after a valid row; duplicate keys (rejected —
		// a map-based decode would silently keep the last value).
		"{\"x\": 1} extra\n",
		"{\"x\": 1, \"x\": 2}\n",
		"{\"flag\": true, \"x\": null, \"flag\": false}\n",
		// Escapes: surrogate pair, lone surrogate, raw DEL (the strconv
		// quoting bug's trigger), invalid escape.
		"{\"s\": \"\\ud83d\\ude00\"}\n{\"s\": \"\\ud800\"}\n{\"s\": \"\x7f\"}\n",
		"{\"s\": \"\\x41\"}\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	schema := []Attribute{
		{Name: "x", Kind: Interval},
		{Name: "s", Kind: Nominal, Levels: []string{"a", "b"}},
		{Name: "flag", Kind: Binary},
	}
	f.Fuzz(func(t *testing.T, in string) {
		// A tiny chunk size forces multi-batch reads through the reused
		// batch, the path the scoring service runs.
		ds, err := ReadAll("fuzz", NewNDJSONBatchReader(strings.NewReader(in), schema, 3))
		if err != nil {
			return // rejected inputs only need to fail cleanly
		}
		for j := 0; j < ds.NumAttrs(); j++ {
			if got := len(ds.Col(j)); got != ds.Len() {
				t.Fatalf("column %d has %d values for %d instances", j, got, ds.Len())
			}
		}
		// The caller-supplied schema must not be mutated by level growth.
		if len(schema[1].Levels) != 2 {
			t.Fatalf("reader mutated the caller's schema: %v", schema[1].Levels)
		}
		var buf bytes.Buffer
		if err := ds.WriteNDJSON(&buf); err != nil {
			t.Fatalf("accepted stream failed to serialize: %v", err)
		}
		back, err := ReadNDJSON("fuzz2", bytes.NewReader(buf.Bytes()), ds.Attrs())
		if err != nil {
			t.Fatalf("round-trip rejected its own output: %v\ninput: %q\nwritten: %q", err, in, buf.String())
		}
		if back.Len() != ds.Len() || back.NumAttrs() != ds.NumAttrs() {
			t.Fatalf("round-trip shape %dx%d, want %dx%d", back.Len(), back.NumAttrs(), ds.Len(), ds.NumAttrs())
		}
		for j := 0; j < ds.NumAttrs(); j++ {
			a, b := ds.Attr(j), back.Attr(j)
			if a.Kind != b.Kind || a.Name != b.Name {
				t.Fatalf("column %d schema %v -> %v", j, a, b)
			}
			// The re-reader is seeded with the grown level set, so nominal
			// indices are stable and every cell must round-trip exactly
			// (missing stays missing; NaN intervals collapsed to missing on
			// the first read already).
			for i := 0; i < ds.Len(); i++ {
				v, w := ds.At(i, j), back.At(i, j)
				if IsMissing(v) != IsMissing(w) || (!IsMissing(v) && v != w) {
					t.Fatalf("cell (%d,%d) %v -> %v\ninput: %q\nwritten: %q", i, j, v, w, in, buf.String())
				}
			}
		}
	})
}
