package artifact

import (
	"fmt"
	"io"

	"roadcrash/internal/compiled"
	"roadcrash/internal/data"
)

// Compile lowers a decoded learner into its compiled evaluation form —
// flat trees, precomputed Bayes tables, fused ensembles — via the compile
// step in internal/compiled. Compiled predictions are bit-identical to the
// interpreted learner's; unrecognized scorers pass through unchanged, so
// compiling is always safe. The serving registry and the batch scorer
// call this automatically at artifact load.
func Compile(s Scorer) Scorer {
	return compiled.Compile(s)
}

// BatchScorer is the out-of-core scoring path: it maps columnar batches
// into the model's training schema and scores them without ever
// materializing a Dataset. The mapping semantics are exactly RowMapper's —
// columns matched by name, absent schema columns scored as missing,
// nominal levels re-indexed by name with unseen levels treated as missing
// — so chunked scores are bit-identical to MapDataset + Score over the
// same rows.
//
// The scorer is compiled at construction. When the compiled form supports
// columnar evaluation (every artifact learner kind does), each batch is
// mapped column-wise into reused schema-ordered buffers and scored in one
// ScoreColumns call — no per-row map, no per-row buffer fill, zero
// allocations in steady state. Scorers without a columnar form fall back
// to the row-at-a-time path over a reused row buffer.
//
// A BatchScorer carries per-stream binding state and must not be shared
// across goroutines or fed interleaved streams; build one per stream
// (construction is cheap next to decoding the artifact).
type BatchScorer struct {
	mapper *RowMapper
	scorer Scorer
	cs     compiled.ColumnScorer // nil when the scorer has no columnar form

	// bindings maps each model schema column to its source in the stream
	// schema; built on the first batch, refreshed when nominal level sets
	// grow.
	bindings []binding
	bound    bool
	srcAttrs []data.Attribute

	row    []float64
	mapped [][]float64 // reused schema-ordered columns for the columnar path
	out    []float64
	rows   int // rows scored so far, for error positions
}

// binding is one model schema column's source in the stream schema.
type binding struct {
	src    int       // stream column index, -1 when absent (always missing)
	direct bool      // interval/binary pass-through
	binary bool      // schema wants 0/1: anything else is an error
	remap  []float64 // nominal: stream level index -> model level value
}

// NewBatchScorer decodes the artifact's model, compiles it and prepares a
// batch scorer for it.
func NewBatchScorer(a *Artifact) (*BatchScorer, error) {
	scorer, err := a.Model()
	if err != nil {
		return nil, err
	}
	mapper, err := NewRowMapper(a)
	if err != nil {
		return nil, err
	}
	return NewBatchScorerFor(scorer, mapper), nil
}

// NewBatchScorerFor wraps an already-decoded model and its row mapper —
// the constructor for callers that hold both, like the scoring service's
// model registry. The scorer is compiled here (a no-op if the caller
// already compiled it).
func NewBatchScorerFor(scorer Scorer, mapper *RowMapper) *BatchScorer {
	scorer = Compile(scorer)
	bs := &BatchScorer{
		mapper: mapper,
		scorer: scorer,
		row:    make([]float64, mapper.Width()),
	}
	if cs, ok := compiled.Columnar(scorer); ok {
		bs.cs = cs
		bs.mapped = make([][]float64, mapper.Width())
	}
	return bs
}

// Mapper returns the row mapper aligning stream columns to the model
// schema.
func (bs *BatchScorer) Mapper() *RowMapper { return bs.mapper }

// bind resolves each model schema column against the stream schema. Stream
// columns outside the schema are ignored (feeds carry bookkeeping columns
// like segment ids); a stream column whose kind conflicts with the schema
// is an error, as in RowMapper.MapDataset.
func (bs *BatchScorer) bind(attrs []data.Attribute) error {
	bs.bindings = make([]binding, bs.mapper.Width())
	for j := range bs.bindings {
		bs.bindings[j] = binding{src: -1}
	}
	for inJ, inAttr := range attrs {
		j, ok := bs.mapper.byName[inAttr.Name]
		if !ok {
			continue
		}
		want := bs.mapper.attrs[j]
		bd := binding{src: inJ}
		switch {
		case want.Kind == data.Nominal && inAttr.Kind == data.Nominal:
			// remap is filled lazily by refreshRemaps so level growth
			// between batches extends it in place.
		case want.Kind != data.Nominal && inAttr.Kind != data.Nominal:
			bd.direct = true
			bd.binary = want.Kind == data.Binary
		default:
			return fmt.Errorf("artifact: column %q is %s in the input but %s in the model schema",
				inAttr.Name, inAttr.Kind, want.Kind)
		}
		bs.bindings[j] = bd
	}
	bs.srcAttrs = attrs
	bs.bound = true
	return nil
}

// refreshRemaps extends the nominal level remap tables to cover levels the
// stream schema has discovered since the last batch.
func (bs *BatchScorer) refreshRemaps() {
	for j := range bs.bindings {
		bd := &bs.bindings[j]
		if bd.src < 0 || bd.direct {
			continue
		}
		levels := bs.srcAttrs[bd.src].Levels
		for l := len(bd.remap); l < len(levels); l++ {
			if t, ok := bs.mapper.levelIndex[j][levels[l]]; ok {
				bd.remap = append(bd.remap, float64(t))
			} else {
				bd.remap = append(bd.remap, data.Missing)
			}
		}
	}
}

// ScoreBatch maps and scores every row of the batch. The returned slice is
// reused on the next call. Batches must all come from one stream: the
// first batch fixes the column bindings, later batches may only grow
// nominal level sets.
func (bs *BatchScorer) ScoreBatch(b *data.Batch) ([]float64, error) {
	attrs := b.Attrs()
	if !bs.bound {
		if err := bs.bind(attrs); err != nil {
			return nil, err
		}
	} else if len(attrs) != len(bs.srcAttrs) {
		return nil, fmt.Errorf("artifact: stream schema changed mid-stream: %d columns, bound to %d", len(attrs), len(bs.srcAttrs))
	}
	bs.srcAttrs = attrs
	bs.refreshRemaps()

	n := b.Len()
	if cap(bs.out) < n {
		bs.out = make([]float64, n)
	}
	bs.out = bs.out[:n]
	if bs.cs != nil {
		if err := bs.mapColumns(b, n); err != nil {
			return nil, err
		}
		bs.cs.ScoreColumns(bs.mapped, bs.out)
		bs.rows += n
		return bs.out, nil
	}
	for i := 0; i < n; i++ {
		for j := range bs.bindings {
			bd := &bs.bindings[j]
			switch {
			case bd.src < 0:
				bs.row[j] = data.Missing
			case bd.direct:
				v := b.At(i, bd.src)
				if bd.binary && !data.IsMissing(v) && v != 0 && v != 1 {
					return nil, fmt.Errorf("artifact: row %d: binary attribute %q got %v", bs.rows+i, bs.mapper.attrs[j].Name, v)
				}
				bs.row[j] = v
			default:
				v := b.At(i, bd.src)
				if data.IsMissing(v) || int(v) < 0 || int(v) >= len(bd.remap) {
					bs.row[j] = data.Missing
				} else {
					bs.row[j] = bd.remap[int(v)]
				}
			}
		}
		bs.out[i] = bs.scorer.PredictProb(bs.row)
	}
	bs.rows += n
	return bs.out, nil
}

// mapColumns lays the batch out as schema-ordered columns in the reused
// mapped buffers — the columnar twin of the per-row mapping loop. Binary
// validation reports the same row as the row-at-a-time path would: the
// lowest bad row, breaking ties on the lowest schema column (a column with
// an earlier bad row would have made that row the lowest).
func (bs *BatchScorer) mapColumns(b *data.Batch, n int) error {
	errRow, errCol := -1, -1
	for j := range bs.bindings {
		bd := &bs.bindings[j]
		if cap(bs.mapped[j]) < n {
			bs.mapped[j] = make([]float64, n)
		}
		col := bs.mapped[j][:n]
		bs.mapped[j] = col
		switch {
		case bd.src < 0:
			for i := range col {
				col[i] = data.Missing
			}
		case bd.direct:
			src := b.Col(bd.src)
			copy(col, src[:n])
			if bd.binary {
				for i, v := range col {
					if !data.IsMissing(v) && v != 0 && v != 1 {
						if errRow < 0 || i < errRow {
							errRow, errCol = i, j
						}
						break
					}
				}
			}
		default:
			src := b.Col(bd.src)
			remap := bd.remap
			for i := 0; i < n; i++ {
				v := src[i]
				if data.IsMissing(v) || int(v) < 0 || int(v) >= len(remap) {
					col[i] = data.Missing
				} else {
					col[i] = remap[int(v)]
				}
			}
		}
	}
	if errRow >= 0 {
		bd := &bs.bindings[errCol]
		return fmt.Errorf("artifact: row %d: binary attribute %q got %v",
			bs.rows+errRow, bs.mapper.attrs[errCol].Name, b.At(errRow, bd.src))
	}
	return nil
}

// ScoreAll drains a batch reader through the scorer, calling emit once per
// batch with the batch and its scores (both only valid during the call).
// It returns the total number of rows scored.
func (bs *BatchScorer) ScoreAll(br data.BatchReader, emit func(b *data.Batch, scores []float64) error) (int, error) {
	total := 0
	for {
		b, err := br.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return total, err
		}
		scores, err := bs.ScoreBatch(b)
		if err != nil {
			return total, err
		}
		if emit != nil {
			if err := emit(b, scores); err != nil {
				return total, err
			}
		}
		total += b.Len()
	}
	return total, nil
}
