package artifact

import (
	"bytes"
	"strings"
	"testing"

	"roadcrash/internal/data"
)

// FuzzArtifactDecode drives the artifact decoder — and through it every
// learner kind's UnmarshalJSON — with arbitrary bytes. The contract:
// Decode never panics (malformed, truncated and internally inconsistent
// artifacts are rejections, not crashes); an accepted artifact re-encodes
// deterministically, survives a decode -> encode -> decode round-trip byte
// for byte, and its model scores a full-schema row without panicking.
// The seed corpus holds one well-formed artifact per kind plus truncated
// and version-mangled variants, so the fuzzer starts inside the format.
func FuzzArtifactDecode(f *testing.F) {
	ds := synthDataset(f, 400, 29)
	for kind, model := range trainAll(f, ds) {
		thr := 8
		if kind == KindZINB {
			thr = 1
		}
		a, err := New("fuzz-"+string(kind), kind, model, ds.Attrs(), thr, 29, "label", nil)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := a.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		good := buf.String()
		f.Add(good)
		f.Add(good[:len(good)/3])
		f.Add(strings.Replace(good, `"format_version": 2`, `"format_version": 1`, 1))
		f.Add(strings.Replace(good, `"format_version": 2`, `"format_version": 7`, 1))
	}
	f.Add(`{}`)
	f.Add(`{"format_version": 2, "kind": "zinb"}`)

	f.Fuzz(func(t *testing.T, in string) {
		a, err := Decode(strings.NewReader(in))
		if err != nil {
			return // rejected inputs only need to fail cleanly
		}
		var b1 bytes.Buffer
		if err := a.Encode(&b1); err != nil {
			t.Fatalf("accepted artifact failed to encode: %v", err)
		}
		back, err := Decode(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of an accepted artifact failed: %v", err)
		}
		var b2 bytes.Buffer
		if err := back.Encode(&b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatal("decode -> encode is not byte-stable")
		}
		m, err := back.Model()
		if err != nil {
			t.Fatalf("accepted artifact failed to rebuild its model: %v", err)
		}
		row := make([]float64, len(back.Schema))
		for i := range row {
			row[i] = data.Missing
		}
		_ = m.PredictProb(row) // must not panic on an all-missing row
	})
}
