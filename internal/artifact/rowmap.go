package artifact

import (
	"fmt"
	"math"
	"strconv"

	"roadcrash/internal/data"
)

// RowMapper lays out externally supplied instances into the artifact's
// training schema order so the decoded model can score them. Input columns
// are matched by attribute name; schema columns absent from the input are
// filled with the missing marker (the learners treat missing values as
// first-class data, so targets and bookkeeping columns never need to be
// present at scoring time). Nominal values are matched by level name
// against the training level set; an unseen level scores as missing.
type RowMapper struct {
	attrs []data.Attribute
	// levelIndex maps level name -> training level index per nominal attr.
	levelIndex []map[string]int
	// byName maps attribute name -> schema index.
	byName map[string]int
}

// NewRowMapper builds a mapper for the artifact's schema.
func NewRowMapper(a *Artifact) (*RowMapper, error) {
	attrs, err := a.DataSchema()
	if err != nil {
		return nil, err
	}
	m := &RowMapper{
		attrs:      attrs,
		levelIndex: make([]map[string]int, len(attrs)),
		byName:     make(map[string]int, len(attrs)),
	}
	for j, at := range attrs {
		m.byName[at.Name] = j
		if at.Kind == data.Nominal {
			idx := make(map[string]int, len(at.Levels))
			for l, name := range at.Levels {
				idx[name] = l
			}
			m.levelIndex[j] = idx
		}
	}
	return m, nil
}

// Width returns the schema row width the model consumes.
func (m *RowMapper) Width() int { return len(m.attrs) }

// Attrs returns the schema attributes in row order.
func (m *RowMapper) Attrs() []data.Attribute { return m.attrs }

// HasAttr reports whether name is a schema attribute.
func (m *RowMapper) HasAttr(name string) bool {
	_, ok := m.byName[name]
	return ok
}

// MapDataset lays every input instance out in schema order. Input columns
// whose names are not in the schema are ignored (batch CSVs carry
// bookkeeping columns like segment ids); schema columns missing from the
// input become missing values. Nominal input columns are re-indexed from
// the input's level names to the training level set; an input column whose
// kind conflicts with the schema is an error.
func (m *RowMapper) MapDataset(ds *data.Dataset) ([][]float64, error) {
	type source struct {
		col    []float64
		remap  []float64 // nominal: input level index -> schema value
		direct bool
		binary bool // schema wants 0/1: reject anything else
	}
	sources := make([]*source, len(m.attrs))
	for inJ, inAttr := range ds.Attrs() {
		j, ok := m.byName[inAttr.Name]
		if !ok {
			continue
		}
		want := m.attrs[j]
		src := &source{col: ds.Col(inJ)}
		switch {
		case want.Kind == data.Nominal && inAttr.Kind == data.Nominal:
			src.remap = make([]float64, len(inAttr.Levels))
			for l, name := range inAttr.Levels {
				if t, ok := m.levelIndex[j][name]; ok {
					src.remap[l] = float64(t)
				} else {
					src.remap[l] = data.Missing
				}
			}
		case want.Kind != data.Nominal && inAttr.Kind != data.Nominal:
			// Interval and binary columns carry their values directly; a
			// binary schema column must still only see 0/1 or the learners
			// indexing per-class level counts would walk off their tables.
			src.direct = true
			src.binary = want.Kind == data.Binary
		default:
			return nil, fmt.Errorf("artifact: column %q is %s in the input but %s in the model schema",
				inAttr.Name, inAttr.Kind, want.Kind)
		}
		sources[j] = src
	}
	rows := make([][]float64, ds.Len())
	for i := range rows {
		row := make([]float64, len(m.attrs))
		for j := range row {
			src := sources[j]
			switch {
			case src == nil:
				row[j] = data.Missing
			case src.direct:
				v := src.col[i]
				if src.binary && !data.IsMissing(v) && v != 0 && v != 1 {
					return nil, fmt.Errorf("artifact: row %d: binary attribute %q got %v", i, m.attrs[j].Name, v)
				}
				row[j] = v
			default:
				v := src.col[i]
				if data.IsMissing(v) || int(v) < 0 || int(v) >= len(src.remap) {
					row[j] = data.Missing
				} else {
					row[j] = src.remap[int(v)]
				}
			}
		}
		rows[i] = row
	}
	return rows, nil
}

// MapValues lays one instance given as attribute name -> value out in
// schema order. Values may be float64/int (interval, binary), bool
// (binary) or string (nominal level name, or a parsable number for the
// other kinds — the JSON-friendly forms). Unknown attribute names are
// rejected so client typos fail loudly instead of silently scoring with a
// missing value; nil values mean missing.
func (m *RowMapper) MapValues(values map[string]any) ([]float64, error) {
	row := make([]float64, len(m.attrs))
	for j := range row {
		row[j] = data.Missing
	}
	for name, raw := range values {
		j, ok := m.byName[name]
		if !ok {
			return nil, fmt.Errorf("artifact: unknown attribute %q", name)
		}
		if raw == nil {
			continue
		}
		at := m.attrs[j]
		switch v := raw.(type) {
		case float64:
			if err := m.setNumber(row, j, v); err != nil {
				return nil, err
			}
		case int:
			if err := m.setNumber(row, j, float64(v)); err != nil {
				return nil, err
			}
		case bool:
			if at.Kind != data.Binary {
				return nil, fmt.Errorf("artifact: attribute %q is %s, got a boolean", name, at.Kind)
			}
			if v {
				row[j] = 1
			} else {
				row[j] = 0
			}
		case string:
			switch at.Kind {
			case data.Nominal:
				l, ok := m.levelIndex[j][v]
				if !ok {
					// Unseen level: score as missing, matching the study's
					// treatment of missing values as valid data.
					continue
				}
				row[j] = float64(l)
			case data.Binary:
				switch v {
				case "0", "false", "no":
					row[j] = 0
				case "1", "true", "yes":
					row[j] = 1
				default:
					return nil, fmt.Errorf("artifact: binary attribute %q got %q", name, v)
				}
			default:
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return nil, fmt.Errorf("artifact: interval attribute %q got %q", name, v)
				}
				row[j] = f
			}
		default:
			return nil, fmt.Errorf("artifact: attribute %q has unsupported value type %T", name, raw)
		}
	}
	return row, nil
}

// setNumber places a numeric input value, rejecting kinds that need names.
func (m *RowMapper) setNumber(row []float64, j int, v float64) error {
	at := m.attrs[j]
	if at.Kind == data.Nominal {
		return fmt.Errorf("artifact: nominal attribute %q wants a level name, got number %v", at.Name, v)
	}
	if at.Kind == data.Binary && v != 0 && v != 1 {
		return fmt.Errorf("artifact: binary attribute %q got %v", at.Name, v)
	}
	row[j] = v
	return nil
}

// Score runs the model over every mapped row.
func Score(model Scorer, rows [][]float64) []float64 {
	out := make([]float64, len(rows))
	for i, row := range rows {
		out[i] = model.PredictProb(row)
	}
	return out
}

// Finite reports whether every score is a usable probability; a NaN score
// signals a malformed model payload that slipped through validation.
func Finite(scores []float64) bool {
	for _, s := range scores {
		if !IsFinite(s) {
			return false
		}
	}
	return true
}

// IsFinite is the scalar form of Finite, for hot loops that check one
// score at a time without building a slice around it.
func IsFinite(s float64) bool {
	return !math.IsNaN(s) && !math.IsInf(s, 0)
}
