package artifact

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"roadcrash/internal/data"
	"roadcrash/internal/mining/tree"
)

// synthArtifact trains a decision tree on the synthetic dataset and wraps
// it as an artifact.
func synthArtifact(t *testing.T, ds *data.Dataset) *Artifact {
	t.Helper()
	dt, err := tree.Grow(ds, ds.MustAttrIndex("label"), treeCfg(ds))
	if err != nil {
		t.Fatal(err)
	}
	a, err := New("stream-tree", KindDecisionTree, dt, ds.Attrs(), 8, 7, "label", nil)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// sameScores requires bit-identical score slices (NaN == NaN).
func sameScores(t *testing.T, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("scored %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("row %d: chunked score %v, in-memory score %v", i, got[i], want[i])
		}
	}
}

// TestBatchScorerBitIdenticalToMapDataset pins the tentpole's equivalence
// claim at the unit level: for any chunk size, streaming a dataset through
// the batch scorer yields exactly the scores of the in-memory
// MapDataset + Score path.
func TestBatchScorerBitIdenticalToMapDataset(t *testing.T) {
	ds := synthDataset(t, 300, 13)
	a := synthArtifact(t, ds)
	scorer, err := a.Model()
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := NewRowMapper(a)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := mapper.MapDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	want := Score(scorer, rows)

	for _, chunk := range []int{1, 7, 64, 1000} {
		bs, err := NewBatchScorer(a)
		if err != nil {
			t.Fatal(err)
		}
		var got []float64
		n, err := bs.ScoreAll(ds.Stream(chunk), func(b *data.Batch, scores []float64) error {
			got = append(got, scores...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if n != ds.Len() {
			t.Fatalf("chunk=%d: ScoreAll reported %d rows, want %d", chunk, n, ds.Len())
		}
		sameScores(t, got, want)
	}
}

// rowOnlyScorer hides any columnar engine, forcing the batch scorer onto
// its interpreted row-at-a-time fallback.
type rowOnlyScorer struct{ s Scorer }

func (r rowOnlyScorer) PredictProb(row []float64) float64 { return r.s.PredictProb(row) }

// TestBatchScorerRowFallbackMatchesColumnar pins the two internal
// evaluation paths against each other: a scorer without a columnar form
// takes the reused-row-buffer loop, and its scores must equal the
// compiled columnar path's bit for bit at every chunk size.
func TestBatchScorerRowFallbackMatchesColumnar(t *testing.T) {
	ds := synthDataset(t, 300, 13)
	a := synthArtifact(t, ds)
	scorer, err := a.Model()
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 7, 64, 1000} {
		collect := func(bs *BatchScorer) []float64 {
			var got []float64
			if _, err := bs.ScoreAll(ds.Stream(chunk), func(b *data.Batch, scores []float64) error {
				got = append(got, scores...)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			return got
		}
		mapperRow, err := NewRowMapper(a)
		if err != nil {
			t.Fatal(err)
		}
		mapperCol, err := NewRowMapper(a)
		if err != nil {
			t.Fatal(err)
		}
		rowPath := collect(NewBatchScorerFor(rowOnlyScorer{scorer}, mapperRow))
		colPath := collect(NewBatchScorerFor(scorer, mapperCol))
		sameScores(t, colPath, rowPath)
	}
}

// TestBatchScorerOverCSVStream drives the full out-of-core path — CSV
// batch reader into batch scorer — and compares against reading the same
// CSV in memory. Chunked nominal-level discovery must not change scores.
func TestBatchScorerOverCSVStream(t *testing.T) {
	ds := synthDataset(t, 250, 17)
	a := synthArtifact(t, ds)
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	back, err := data.ReadCSV("back", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	scorer, err := a.Model()
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := NewRowMapper(a)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := mapper.MapDataset(back)
	if err != nil {
		t.Fatal(err)
	}
	want := Score(scorer, rows)

	for _, chunk := range []int{3, 50, 10000} {
		br, err := data.NewCSVBatchReader(strings.NewReader(text), chunk)
		if err != nil {
			t.Fatal(err)
		}
		bs, err := NewBatchScorer(a)
		if err != nil {
			t.Fatal(err)
		}
		var got []float64
		if _, err := bs.ScoreAll(br, func(b *data.Batch, scores []float64) error {
			got = append(got, scores...)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		sameScores(t, got, want)
	}
}

func TestBatchScorerSchemaHandling(t *testing.T) {
	ds := synthDataset(t, 200, 19)
	a := synthArtifact(t, ds)

	t.Run("absent and bookkeeping columns", func(t *testing.T) {
		// A stream carrying only x1 plus an extra column outside the model
		// schema: the extra is ignored, every other schema column scores as
		// missing — matching MapDataset's semantics.
		attrs := []data.Attribute{{Name: "x1", Kind: data.Interval}, {Name: "segment", Kind: data.Interval}}
		b := data.NewBatch(attrs, 4)
		b.AppendRow([]float64{0.5, 99})
		bs, err := NewBatchScorer(a)
		if err != nil {
			t.Fatal(err)
		}
		scores, err := bs.ScoreBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		scorer, _ := a.Model()
		mapper, _ := NewRowMapper(a)
		row, err := mapper.MapValues(map[string]any{"x1": 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if want := scorer.PredictProb(row); scores[0] != want {
			t.Fatalf("partial-row score %v, MapValues score %v", scores[0], want)
		}
	})

	t.Run("unseen level scores as missing", func(t *testing.T) {
		attrs := []data.Attribute{{Name: "surface", Kind: data.Nominal, Levels: []string{"granite"}}}
		b := data.NewBatch(attrs, 2)
		b.AppendRow([]float64{0})
		bs, err := NewBatchScorer(a)
		if err != nil {
			t.Fatal(err)
		}
		scores, err := bs.ScoreBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		scorer, _ := a.Model()
		mapper, _ := NewRowMapper(a)
		row, _ := mapper.MapValues(map[string]any{})
		if want := scorer.PredictProb(row); scores[0] != want {
			t.Fatalf("unseen-level score %v, all-missing score %v", scores[0], want)
		}
	})

	t.Run("kind conflict", func(t *testing.T) {
		attrs := []data.Attribute{{Name: "surface", Kind: data.Interval}}
		b := data.NewBatch(attrs, 2)
		b.AppendRow([]float64{1})
		bs, err := NewBatchScorer(a)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := bs.ScoreBatch(b); err == nil {
			t.Fatal("expected a kind-conflict error")
		}
	})

	t.Run("binary out of range", func(t *testing.T) {
		attrs := []data.Attribute{{Name: "wet", Kind: data.Interval}}
		b := data.NewBatch(attrs, 2)
		b.AppendRow([]float64{3})
		bs, err := NewBatchScorer(a)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := bs.ScoreBatch(b); err == nil {
			t.Fatal("expected a binary range error")
		}
	})

	t.Run("width change mid-stream", func(t *testing.T) {
		bs, err := NewBatchScorer(a)
		if err != nil {
			t.Fatal(err)
		}
		b1 := data.NewBatch([]data.Attribute{{Name: "x1", Kind: data.Interval}}, 2)
		b1.AppendRow([]float64{1})
		if _, err := bs.ScoreBatch(b1); err != nil {
			t.Fatal(err)
		}
		b2 := data.NewBatch([]data.Attribute{{Name: "x1", Kind: data.Interval}, {Name: "x2", Kind: data.Interval}}, 2)
		b2.AppendRow([]float64{1, 2})
		if _, err := bs.ScoreBatch(b2); err == nil {
			t.Fatal("expected a schema-change error")
		}
	})
}

// TestBatchScorerLevelGrowth feeds a stream whose nominal level set grows
// between batches and checks the remap extension keeps scores equal to the
// in-memory path over the concatenated rows.
func TestBatchScorerLevelGrowth(t *testing.T) {
	ds := synthDataset(t, 200, 23)
	a := synthArtifact(t, ds)
	// Rows ordered so the later training levels only appear in later
	// chunks; chunk=1 forces a remap refresh per row.
	in := "surface:nominal,x1\nseal,0.1\nseal,-2\ngravel,0.5\nconcrete,1.5\nmystery,0\n"
	back, err := data.ReadCSV("in", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	scorer, _ := a.Model()
	mapper, _ := NewRowMapper(a)
	rows, err := mapper.MapDataset(back)
	if err != nil {
		t.Fatal(err)
	}
	want := Score(scorer, rows)

	br, err := data.NewCSVBatchReader(strings.NewReader(in), 1)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := NewBatchScorer(a)
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	if _, err := bs.ScoreAll(br, func(b *data.Batch, scores []float64) error {
		got = append(got, scores...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sameScores(t, got, want)
}
