// Package artifact defines the versioned, deterministic JSON format that
// persists the study's trained learners — the deployable asset the paper's
// conclusion calls for ("develop deployment to embed with a strategic and
// operational decision support system"). An artifact carries everything a
// scoring service needs to answer queries without retraining: the learner
// kind and its fitted parameters, the full training row schema (attribute
// names, kinds and nominal levels, in training order), the crash-proneness
// threshold the target was derived at, the study seed, and the assessment
// metrics recorded at training time.
//
// Encoding is deterministic: the same fitted model always serializes to
// the same bytes (json.Marshal emits struct fields in declaration order,
// map keys sorted, and float64 values in their shortest exact form), so
// artifacts can be content-addressed, diffed and pinned in golden tests.
package artifact

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"roadcrash/internal/data"
	"roadcrash/internal/geo"
	"roadcrash/internal/mining/bayes"
	"roadcrash/internal/mining/ensemble"
	"roadcrash/internal/mining/logit"
	"roadcrash/internal/mining/m5"
	"roadcrash/internal/mining/neural"
	"roadcrash/internal/mining/tree"
	"roadcrash/internal/mining/zinb"
)

// FormatVersion is the current artifact format. Encoders write this
// version; decoders accept every version from 1 up to it (the layout has
// only grown — version 2 added the zinb, m5 and neural kinds, which a
// version-1 artifact therefore cannot carry). Bump it on any change to the
// layout.
const FormatVersion = 2

// Kind names the learner family a payload belongs to.
type Kind string

// The supported learner kinds, matching the models the study assesses.
const (
	KindDecisionTree   Kind = "decision-tree"   // chi-square classification tree
	KindRegressionTree Kind = "regression-tree" // F-test regression tree
	KindNaiveBayes     Kind = "naive-bayes"     // naive Bayes over encoded attributes
	KindLogistic       Kind = "logistic"        // logistic regression
	KindBagging        Kind = "bagging"         // bagged decision trees
	KindAdaBoost       Kind = "adaboost"        // boosted decision stumps/trees
	KindZINB           Kind = "zinb"            // zero-altered Poisson hurdle, scored as P(count > t)
	KindM5             Kind = "m5"              // M5 model tree with per-leaf ridge regressions
	KindNeural         Kind = "neural"          // single hidden-layer perceptron
	KindHotspot        Kind = "hotspot"         // grid-cell risk surface scored on (x_km, y_km)
)

func (k Kind) valid() bool {
	switch k {
	case KindDecisionTree, KindRegressionTree, KindNaiveBayes, KindLogistic, KindBagging, KindAdaBoost,
		KindZINB, KindM5, KindNeural, KindHotspot:
		return true
	}
	return false
}

// minVersion returns the first format version able to carry the kind: the
// count/regression learners and the hotspot surface arrived with version 2,
// so a version-1 artifact claiming one is corrupt by construction.
func (k Kind) minVersion() int {
	switch k {
	case KindZINB, KindM5, KindNeural, KindHotspot:
		return 2
	}
	return 1
}

// Attr is one column of the training schema.
type Attr struct {
	Name   string   `json:"name"`
	Kind   string   `json:"kind"` // interval | nominal | binary
	Levels []string `json:"levels,omitempty"`
}

// Artifact is one persisted model.
type Artifact struct {
	FormatVersion int                `json:"format_version"`
	Name          string             `json:"name"`
	Kind          Kind               `json:"kind"`
	Threshold     int                `json:"threshold"`
	Seed          uint64             `json:"seed"`
	Target        string             `json:"target"`
	Schema        []Attr             `json:"schema"`
	Metrics       map[string]float64 `json:"metrics,omitempty"`
	Payload       json.RawMessage    `json:"payload"`
}

// Scorer is the prediction interface every decodable learner satisfies
// (structurally identical to eval.Classifier, declared here so the
// artifact layer does not depend on the evaluation harness).
type Scorer interface {
	PredictProb(row []float64) float64
}

// SchemaOf converts a dataset attribute schema into the artifact form.
func SchemaOf(attrs []data.Attribute) []Attr {
	out := make([]Attr, len(attrs))
	for i, a := range attrs {
		out[i] = Attr{Name: a.Name, Kind: a.Kind.String(), Levels: append([]string(nil), a.Levels...)}
	}
	return out
}

// DataSchema converts the artifact schema back into dataset attributes.
func (a *Artifact) DataSchema() ([]data.Attribute, error) {
	out := make([]data.Attribute, len(a.Schema))
	for i, at := range a.Schema {
		kind, err := data.KindFromString(at.Kind)
		if err != nil {
			return nil, fmt.Errorf("artifact: schema attribute %q: %w", at.Name, err)
		}
		out[i] = data.Attribute{Name: at.Name, Kind: kind, Levels: append([]string(nil), at.Levels...)}
	}
	return out, nil
}

// New assembles an artifact from a fitted model. The model must be one of
// the supported learner types; schema is the full training row schema in
// training order.
func New(name string, kind Kind, model Scorer, schema []data.Attribute, threshold int, seed uint64, target string, metrics map[string]float64) (*Artifact, error) {
	if name == "" {
		return nil, fmt.Errorf("artifact: empty model name")
	}
	if !kind.valid() {
		return nil, fmt.Errorf("artifact: unknown kind %q", kind)
	}
	if len(schema) == 0 {
		return nil, fmt.Errorf("artifact: empty schema")
	}
	payload, err := json.Marshal(model)
	if err != nil {
		return nil, fmt.Errorf("artifact: marshaling %s payload: %w", kind, err)
	}
	return &Artifact{
		FormatVersion: FormatVersion,
		Name:          name,
		Kind:          kind,
		Threshold:     threshold,
		Seed:          seed,
		Target:        target,
		Schema:        SchemaOf(schema),
		Metrics:       metrics,
		Payload:       payload,
	}, nil
}

// Model decodes the payload into its learner and validates it against the
// header schema — tree payloads must embed exactly the header schema
// (names, kinds and nominal level order all matter for routing), and
// column-indexed learners must stay inside the header row width — so
// corrupt artifacts fail here, at load, not on the first scoring request.
// Each call returns a freshly decoded model.
func (a *Artifact) Model() (Scorer, error) {
	var s Scorer
	switch a.Kind {
	case KindDecisionTree, KindRegressionTree:
		t := new(tree.Tree)
		if err := json.Unmarshal(a.Payload, t); err != nil {
			return nil, fmt.Errorf("artifact %q: %w", a.Name, err)
		}
		if err := a.checkTreeSchema(t); err != nil {
			return nil, err
		}
		s = t
	case KindNaiveBayes:
		m := new(bayes.Model)
		if err := json.Unmarshal(a.Payload, m); err != nil {
			return nil, fmt.Errorf("artifact %q: %w", a.Name, err)
		}
		if err := m.Validate(len(a.Schema)); err != nil {
			return nil, fmt.Errorf("artifact %q: %w", a.Name, err)
		}
		s = m
	case KindLogistic:
		m := new(logit.Model)
		if err := json.Unmarshal(a.Payload, m); err != nil {
			return nil, fmt.Errorf("artifact %q: %w", a.Name, err)
		}
		if err := m.Validate(len(a.Schema)); err != nil {
			return nil, fmt.Errorf("artifact %q: %w", a.Name, err)
		}
		s = m
	case KindBagging:
		m := new(ensemble.Bagging)
		if err := json.Unmarshal(a.Payload, m); err != nil {
			return nil, fmt.Errorf("artifact %q: %w", a.Name, err)
		}
		if err := a.checkTreeSchemas(m.Members()); err != nil {
			return nil, err
		}
		s = m
	case KindAdaBoost:
		m := new(ensemble.AdaBoost)
		if err := json.Unmarshal(a.Payload, m); err != nil {
			return nil, fmt.Errorf("artifact %q: %w", a.Name, err)
		}
		if err := a.checkTreeSchemas(m.Members()); err != nil {
			return nil, err
		}
		s = m
	case KindZINB:
		c := new(zinb.ThresholdClassifier)
		if err := json.Unmarshal(a.Payload, c); err != nil {
			return nil, fmt.Errorf("artifact %q: %w", a.Name, err)
		}
		if err := c.Validate(len(a.Schema)); err != nil {
			return nil, fmt.Errorf("artifact %q: %w", a.Name, err)
		}
		if c.Threshold() != a.Threshold {
			return nil, fmt.Errorf("artifact %q: payload classifies count > %d, header threshold is %d",
				a.Name, c.Threshold(), a.Threshold)
		}
		s = *c
	case KindM5:
		m := new(m5.Model)
		if err := json.Unmarshal(a.Payload, m); err != nil {
			return nil, fmt.Errorf("artifact %q: %w", a.Name, err)
		}
		if err := m.Validate(len(a.Schema)); err != nil {
			return nil, fmt.Errorf("artifact %q: %w", a.Name, err)
		}
		if err := a.checkTreeSchema(m.Structure()); err != nil {
			return nil, err
		}
		s = m
	case KindNeural:
		m := new(neural.Model)
		if err := json.Unmarshal(a.Payload, m); err != nil {
			return nil, fmt.Errorf("artifact %q: %w", a.Name, err)
		}
		if err := m.Validate(len(a.Schema)); err != nil {
			return nil, fmt.Errorf("artifact %q: %w", a.Name, err)
		}
		s = m
	case KindHotspot:
		m := new(geo.Model)
		if err := json.Unmarshal(a.Payload, m); err != nil {
			return nil, fmt.Errorf("artifact %q: %w", a.Name, err)
		}
		if err := m.Validate(len(a.Schema)); err != nil {
			return nil, fmt.Errorf("artifact %q: %w", a.Name, err)
		}
		s = m
	default:
		return nil, fmt.Errorf("artifact %q: unknown kind %q", a.Name, a.Kind)
	}
	return s, nil
}

// checkTreeSchema requires the tree's embedded schema to equal the header
// schema exactly: a drifted name, kind or nominal level order would route
// every mapped row down the wrong branches with no error anywhere.
func (a *Artifact) checkTreeSchema(t *tree.Tree) error {
	attrs := t.SchemaAttrs()
	if len(attrs) != len(a.Schema) {
		return fmt.Errorf("artifact %q: tree schema has %d columns, header schema %d", a.Name, len(attrs), len(a.Schema))
	}
	for j, at := range attrs {
		h := a.Schema[j]
		if at.Name != h.Name || at.Kind.String() != h.Kind {
			return fmt.Errorf("artifact %q: tree schema column %d is %s %q, header says %s %q",
				a.Name, j, at.Kind, at.Name, h.Kind, h.Name)
		}
		if len(at.Levels) != len(h.Levels) {
			return fmt.Errorf("artifact %q: column %q has %d levels in the tree, %d in the header",
				a.Name, at.Name, len(at.Levels), len(h.Levels))
		}
		for l, lv := range at.Levels {
			if lv != h.Levels[l] {
				return fmt.Errorf("artifact %q: column %q level %d is %q in the tree, %q in the header",
					a.Name, at.Name, l, lv, h.Levels[l])
			}
		}
	}
	return nil
}

func (a *Artifact) checkTreeSchemas(trees []*tree.Tree) error {
	for i, t := range trees {
		if err := a.checkTreeSchema(t); err != nil {
			return fmt.Errorf("ensemble member %d: %w", i, err)
		}
	}
	return nil
}

func (a *Artifact) validate() error {
	if a.FormatVersion < 1 || a.FormatVersion > FormatVersion {
		return fmt.Errorf("artifact: format version %d, this build reads 1 through %d", a.FormatVersion, FormatVersion)
	}
	if a.Name == "" {
		return fmt.Errorf("artifact: empty model name")
	}
	if !a.Kind.valid() {
		return fmt.Errorf("artifact: unknown kind %q", a.Kind)
	}
	if a.FormatVersion < a.Kind.minVersion() {
		return fmt.Errorf("artifact: kind %q needs format version %d, artifact says %d",
			a.Kind, a.Kind.minVersion(), a.FormatVersion)
	}
	if a.Target == "" {
		return fmt.Errorf("artifact: empty target attribute")
	}
	if len(a.Schema) == 0 {
		return fmt.Errorf("artifact: empty schema")
	}
	seen := make(map[string]bool, len(a.Schema))
	for _, at := range a.Schema {
		if at.Name == "" {
			return fmt.Errorf("artifact: schema attribute with empty name")
		}
		if seen[at.Name] {
			return fmt.Errorf("artifact: duplicate schema attribute %q", at.Name)
		}
		seen[at.Name] = true
	}
	if _, err := a.DataSchema(); err != nil {
		return err
	}
	if len(a.Payload) == 0 {
		return fmt.Errorf("artifact: empty payload")
	}
	return nil
}

// Encode writes the artifact as indented JSON. Output is deterministic:
// encoding the same artifact twice yields identical bytes.
func (a *Artifact) Encode(w io.Writer) error {
	if err := a.validate(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("artifact: encoding %q: %w", a.Name, err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("artifact: writing %q: %w", a.Name, err)
	}
	return nil
}

// Decode parses and validates an artifact, including an eager decode of
// the model payload so corrupt artifacts fail at load time rather than on
// the first scoring request.
func Decode(r io.Reader) (*Artifact, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("artifact: reading: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	var a Artifact
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("artifact: decoding: %w", err)
	}
	if err := a.validate(); err != nil {
		return nil, err
	}
	if _, err := a.Model(); err != nil {
		return nil, err
	}
	return &a, nil
}

// WriteFile encodes the artifact to path.
func WriteFile(path string, a *Artifact) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	if err := a.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile decodes the artifact at path.
func ReadFile(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	defer f.Close()
	a, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("artifact: %s: %w", path, err)
	}
	return a, nil
}
