package artifact

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"roadcrash/internal/compiled"
	"roadcrash/internal/geo"
	"roadcrash/internal/rng"
)

func hotspotModel(t *testing.T) *geo.Model {
	t.Helper()
	g, err := geo.NewGrid(0, 0, 96, 96, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(31)
	risk := make([]float64, g.Cells())
	for c := range risk {
		risk[c] = r.Float64()
	}
	return &geo.Model{Grid: g, Method: geo.MethodKDE, BandwidthKm: 3, Risk: risk}
}

// TestHotspotRoundTrip pins the hotspot artifact end to end: encode,
// decode, compile, and score bit-identically to the fitted surface —
// including the top-k ranking the /hotspots endpoint serves.
func TestHotspotRoundTrip(t *testing.T) {
	m := hotspotModel(t)
	a, err := New("grid-kde", KindHotspot, m, geo.Schema(), 0, 31, "cell_label", nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != KindHotspot || back.FormatVersion != FormatVersion {
		t.Fatalf("decoded kind %q version %d", back.Kind, back.FormatVersion)
	}
	dec, err := back.Model()
	if err != nil {
		t.Fatal(err)
	}
	cs, ok := compiled.Columnar(compiled.Compile(dec))
	if !ok {
		t.Fatal("compiled hotspot model is not columnar")
	}
	r := rng.New(7)
	xs, ys := make([]float64, 256), make([]float64, 256)
	for i := range xs {
		xs[i] = r.Float64()*110 - 7 // includes out-of-grid coordinates
		ys[i] = r.Float64()*110 - 7
	}
	out := make([]float64, len(xs))
	cs.ScoreColumns([][]float64{xs, ys}, out)
	for i := range xs {
		want := m.PredictProb([]float64{xs[i], ys[i]})
		if math.Float64bits(out[i]) != math.Float64bits(want) {
			t.Fatalf("row %d: decoded+compiled %v vs fitted %v", i, out[i], want)
		}
	}
	gm, ok := dec.(*geo.Model)
	if !ok {
		t.Fatalf("decoded model is %T, want *geo.Model", dec)
	}
	wantTop, gotTop := m.TopCells(10), gm.TopCells(10)
	for i := range wantTop {
		if gotTop[i] != wantTop[i] {
			t.Fatalf("top cell %d: %+v vs %+v", i, gotTop[i], wantTop[i])
		}
	}
}

// TestHotspotVersionGate pins the format gate: hotspot is a version-2
// kind, so a version-1 envelope claiming one is corrupt by construction.
func TestHotspotVersionGate(t *testing.T) {
	m := hotspotModel(t)
	a, err := New("grid-kde", KindHotspot, m, geo.Schema(), 0, 31, "cell_label", nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	v1 := strings.Replace(buf.String(), `"format_version": 2`, `"format_version": 1`, 1)
	if v1 == buf.String() {
		t.Fatal("test setup: version replacement did not apply")
	}
	if _, err := Decode(strings.NewReader(v1)); err == nil {
		t.Error("version-1 artifact with a hotspot payload decoded without error")
	}
}

// TestHotspotRejectsCorruptPayloads exercises the load-time validation: a
// risk array that disagrees with the grid, an out-of-range risk, and a
// schema wider than the two coordinate columns must all fail at Decode.
func TestHotspotRejectsCorruptPayloads(t *testing.T) {
	m := hotspotModel(t)
	a, err := New("grid-kde", KindHotspot, m, geo.Schema(), 0, 31, "cell_label", nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	bad := map[string]string{
		"truncated risk": strings.Replace(good, `"nx": 12`, `"nx": 13`, 1),
		"negative cell":  strings.Replace(good, `"cell_km": 8`, `"cell_km": -8`, 1),
		"unknown method": strings.Replace(good, `"method": "kde"`, `"method": "psychic"`, 1),
		"zero bandwidth": strings.Replace(good, `"bandwidth_km": 3`, `"bandwidth_km": 0`, 1),
	}
	for name, doc := range bad {
		if doc == good {
			t.Fatalf("%s: corruption did not apply", name)
		}
		if _, err := Decode(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: corrupt artifact decoded without error", name)
		}
	}
}
