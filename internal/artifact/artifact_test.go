package artifact

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"roadcrash/internal/data"
	"roadcrash/internal/mining/bayes"
	"roadcrash/internal/mining/ensemble"
	"roadcrash/internal/mining/logit"
	"roadcrash/internal/mining/m5"
	"roadcrash/internal/mining/neural"
	"roadcrash/internal/mining/tree"
	"roadcrash/internal/mining/zinb"
	"roadcrash/internal/rng"
)

// synthDataset builds a small mixed-kind dataset with a learnable signal
// and sprinkled missing values: positive when x1 + noise clears a cut,
// modulated by the nominal surface. crash_count is the same signal as a
// count — zero below the cut, growing with the score above it — so the
// hurdle learner has both components to fit.
func synthDataset(t testing.TB, n int, seed uint64) *data.Dataset {
	t.Helper()
	r := rng.New(seed)
	b := data.NewBuilder("synth").
		Interval("x1").
		Interval("x2").
		Nominal("surface", "seal", "gravel", "concrete").
		Binary("wet").
		Binary("label").
		Interval("label_num").
		Interval("crash_count")
	for i := 0; i < n; i++ {
		x1 := r.Normal(0, 1)
		x2 := r.Normal(0, 1)
		surface := float64(r.Intn(3))
		wet := float64(r.Intn(2))
		score := x1 + 0.5*x2 + 0.8*surface + 0.3*wet + r.Normal(0, 0.5)
		label := 0.0
		if score > 1.2 {
			label = 1
		}
		count := math.Floor(score)
		if count < 0 {
			count = 0
		}
		if r.Float64() < 0.05 {
			x2 = data.Missing
		}
		if r.Float64() < 0.05 {
			surface = data.Missing
		}
		b.Row(x1, x2, surface, wet, label, label, count)
	}
	return b.Build()
}

// heldOutRows builds a grid of full-schema probe rows, including missing
// values and every nominal level, to pin prediction equality over the
// whole input space rather than the training points.
func heldOutRows(ds *data.Dataset) [][]float64 {
	var rows [][]float64
	for _, x1 := range []float64{-2, -0.5, 0, 0.7, 2.5, data.Missing} {
		for _, x2 := range []float64{-1.5, 0, 1.5, data.Missing} {
			for surface := -1; surface < 3; surface++ {
				sv := float64(surface)
				if surface < 0 {
					sv = data.Missing
				}
				rows = append(rows, []float64{x1, x2, sv, float64(len(rows) % 2), data.Missing, data.Missing, data.Missing})
			}
		}
	}
	return rows
}

func treeCfg(ds *data.Dataset) tree.Config {
	cfg := tree.DefaultConfig()
	cfg.MinLeaf = 10
	cfg.Features = []int{0, 1, 2, 3}
	return cfg
}

// trainAll fits one model per artifact kind on the synthetic data.
func trainAll(t testing.TB, ds *data.Dataset) map[Kind]Scorer {
	t.Helper()
	binCol := ds.MustAttrIndex("label")
	numCol := ds.MustAttrIndex("label_num")

	dt, err := tree.Grow(ds, binCol, treeCfg(ds))
	if err != nil {
		t.Fatalf("decision tree: %v", err)
	}
	rt, err := tree.GrowRegression(ds, numCol, treeCfg(ds))
	if err != nil {
		t.Fatalf("regression tree: %v", err)
	}
	nbCfg := bayes.DefaultConfig()
	nbCfg.Features = []int{0, 1, 2, 3}
	nb, err := bayes.Train(ds, binCol, nbCfg)
	if err != nil {
		t.Fatalf("naive bayes: %v", err)
	}
	lrCfg := logit.DefaultConfig()
	lrCfg.Exclude = []string{"label_num"}
	lr, err := logit.Train(ds, binCol, lrCfg)
	if err != nil {
		t.Fatalf("logit: %v", err)
	}
	bagCfg := ensemble.DefaultBaggingConfig()
	bagCfg.Trees = 5
	bagCfg.Tree = treeCfg(ds)
	bag, err := ensemble.TrainBagging(ds, binCol, bagCfg)
	if err != nil {
		t.Fatalf("bagging: %v", err)
	}
	adaCfg := ensemble.DefaultAdaBoostConfig()
	adaCfg.Rounds = 5
	adaCfg.Tree.MinLeaf = 10
	adaCfg.Tree.Features = []int{0, 1, 2, 3}
	ada, err := ensemble.TrainAdaBoost(ds, binCol, adaCfg)
	if err != nil {
		t.Fatalf("adaboost: %v", err)
	}
	zbCfg := zinb.DefaultConfig()
	zbCfg.Exclude = []string{"label", "label_num"}
	zb, err := zinb.Train(ds, ds.MustAttrIndex("crash_count"), zbCfg)
	if err != nil {
		t.Fatalf("zinb: %v", err)
	}
	m5Cfg := m5.DefaultConfig()
	m5Cfg.Tree = treeCfg(ds)
	m5Cfg.Exclude = []string{"label", "crash_count"}
	mt, err := m5.Train(ds, numCol, m5Cfg)
	if err != nil {
		t.Fatalf("m5: %v", err)
	}
	nnCfg := neural.DefaultConfig()
	nnCfg.Epochs = 10
	nnCfg.Exclude = []string{"label_num", "crash_count"}
	nn, err := neural.Train(ds, binCol, nnCfg)
	if err != nil {
		t.Fatalf("neural: %v", err)
	}
	return map[Kind]Scorer{
		KindDecisionTree:   dt,
		KindRegressionTree: rt,
		KindNaiveBayes:     nb,
		KindLogistic:       lr,
		KindBagging:        bag,
		KindAdaBoost:       ada,
		KindZINB:           zb.Thresholded(1),
		KindM5:             mt,
		KindNeural:         nn,
	}
}

func TestRoundTripBitIdenticalPredictions(t *testing.T) {
	ds := synthDataset(t, 600, 7)
	probes := heldOutRows(ds)
	for kind, model := range trainAll(t, ds) {
		t.Run(string(kind), func(t *testing.T) {
			// The zinb payload embeds its own count boundary, which must agree
			// with the header threshold; trainAll builds it at t = 1.
			thr := 8
			if kind == KindZINB {
				thr = 1
			}
			a, err := New("rt-"+string(kind), kind, model, ds.Attrs(), thr, 7, "label", map[string]float64{"mcpv": 0.5})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := a.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			back, err := Decode(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := back.Model()
			if err != nil {
				t.Fatal(err)
			}
			for i, row := range probes {
				want := model.PredictProb(row)
				got := decoded.PredictProb(row)
				if math.IsNaN(want) && math.IsNaN(got) {
					continue
				}
				if want != got {
					t.Fatalf("probe %d: prediction drifted across round-trip: %v -> %v", i, want, got)
				}
			}
			// Header metadata survives.
			if back.Threshold != thr || back.Seed != 7 || back.Target != "label" || back.Metrics["mcpv"] != 0.5 {
				t.Fatalf("metadata mangled: %+v", back)
			}
		})
	}
}

func TestEncodeDeterministic(t *testing.T) {
	ds := synthDataset(t, 400, 11)
	dt, err := tree.Grow(ds, ds.MustAttrIndex("label"), treeCfg(ds))
	if err != nil {
		t.Fatal(err)
	}
	a, err := New("det", KindDecisionTree, dt, ds.Attrs(), 4, 11, "label", nil)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := a.Encode(&b1); err != nil {
		t.Fatal(err)
	}
	if err := a.Encode(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("encoding the same artifact twice produced different bytes")
	}
	// Encode -> decode -> encode is also byte-stable.
	back, err := Decode(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b3 bytes.Buffer
	if err := back.Encode(&b3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b3.Bytes()) {
		t.Fatal("re-encoding a decoded artifact produced different bytes")
	}
}

func TestDecodeRejectsCorruptArtifacts(t *testing.T) {
	ds := synthDataset(t, 400, 3)
	dt, err := tree.Grow(ds, ds.MustAttrIndex("label"), treeCfg(ds))
	if err != nil {
		t.Fatal(err)
	}
	a, err := New("corrupt", KindDecisionTree, dt, ds.Attrs(), 8, 3, "label", nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := map[string]string{
		"empty":            "",
		"not json":         "certainly not json",
		"truncated":        good[:len(good)/2],
		"future version":   strings.Replace(good, `"format_version": 2`, `"format_version": 99`, 1),
		"version zero":     strings.Replace(good, `"format_version": 2`, `"format_version": 0`, 1),
		"unknown kind":     strings.Replace(good, `"kind": "decision-tree"`, `"kind": "perceptron"`, 1),
		"empty name":       strings.Replace(good, `"name": "corrupt"`, `"name": ""`, 1),
		"no header target": strings.Replace(good, `"target":`, `"bogus":`, 1),
		"payload mangled":  strings.Replace(good, `"root":`, `"rooty":`, 1),
		"payload not tree": strings.Replace(good, `"payload": {`, `"payload": 42, "x": {`, 1),
	}
	for name, in := range cases {
		if _, err := Decode(strings.NewReader(in)); err == nil {
			t.Errorf("%s: corrupt artifact decoded without error", name)
		}
	}
}

// TestVersionCompat pins the format's compatibility rules: a version-1
// artifact carrying a version-1 kind still decodes (and re-encodes without
// silently upgrading), while a version-1 artifact claiming one of the
// version-2 count/regression kinds is corrupt by construction.
func TestVersionCompat(t *testing.T) {
	ds := synthDataset(t, 400, 17)
	dt, err := tree.Grow(ds, ds.MustAttrIndex("label"), treeCfg(ds))
	if err != nil {
		t.Fatal(err)
	}
	a, err := New("compat", KindDecisionTree, dt, ds.Attrs(), 8, 17, "label", nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	v1 := strings.Replace(buf.String(), `"format_version": 2`, `"format_version": 1`, 1)
	if v1 == buf.String() {
		t.Fatal("test setup: version replacement did not apply")
	}
	back, err := Decode(strings.NewReader(v1))
	if err != nil {
		t.Fatalf("version-1 artifact no longer decodes: %v", err)
	}
	if back.FormatVersion != 1 {
		t.Fatalf("decoded format version = %d, want 1", back.FormatVersion)
	}
	decoded, err := back.Model()
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range heldOutRows(ds) {
		if got, want := decoded.PredictProb(row), dt.PredictProb(row); got != want {
			t.Fatalf("probe %d: version-1 decode drifted: %v vs %v", i, got, want)
		}
	}
	// Re-encoding keeps the artifact at its own version, byte for byte.
	var again bytes.Buffer
	if err := back.Encode(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != v1 {
		t.Fatal("re-encoding a version-1 artifact changed its bytes")
	}

	// A version-2 kind inside a version-1 envelope must be rejected.
	zbCfg := zinb.DefaultConfig()
	zbCfg.Exclude = []string{"label", "label_num"}
	zb, err := zinb.Train(ds, ds.MustAttrIndex("crash_count"), zbCfg)
	if err != nil {
		t.Fatal(err)
	}
	za, err := New("compat-zinb", KindZINB, zb.Thresholded(1), ds.Attrs(), 1, 17, "crash_count", nil)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := za.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	zv1 := strings.Replace(buf.String(), `"format_version": 2`, `"format_version": 1`, 1)
	if _, err := Decode(strings.NewReader(zv1)); err == nil {
		t.Error("version-1 artifact with a zinb payload decoded without error")
	}
}

// TestDecodeRejectsCorruptCountKinds runs the corrupt-decode table over the
// version-2 kinds: truncation, mangled payload keys, a payload decoded
// under the wrong kind, and a zinb payload whose embedded count boundary
// disagrees with the header threshold.
func TestDecodeRejectsCorruptCountKinds(t *testing.T) {
	ds := synthDataset(t, 500, 19)
	encoded := func(kind Kind, model Scorer, thr int, target string) string {
		t.Helper()
		a, err := New("c-"+string(kind), kind, model, ds.Attrs(), thr, 19, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := a.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	models := trainAll(t, ds)
	zs := encoded(KindZINB, models[KindZINB], 1, "crash_count")
	ms := encoded(KindM5, models[KindM5], 8, "label_num")
	ns := encoded(KindNeural, models[KindNeural], 8, "label")

	cases := map[string]string{
		"zinb truncated":      zs[:len(zs)/2],
		"zinb payload key":    strings.Replace(zs, `"hurdle_weights"`, `"hurdle_wrong"`, 1),
		"zinb as logistic":    strings.Replace(zs, `"kind": "zinb"`, `"kind": "logistic"`, 1),
		"zinb threshold":      strings.Replace(zs, `"threshold": 1`, `"threshold": 3`, 1),
		"m5 truncated":        ms[:len(ms)/2],
		"m5 payload key":      strings.Replace(ms, `"structure"`, `"structurey"`, 1),
		"m5 as decision-tree": strings.Replace(ms, `"kind": "m5"`, `"kind": "decision-tree"`, 1),
		"neural truncated":    ns[:len(ns)/2],
		"neural payload key":  strings.Replace(ns, `"w1"`, `"w9"`, 1),
		"neural as zinb":      strings.Replace(ns, `"kind": "neural"`, `"kind": "zinb"`, 1),
	}
	for name, in := range cases {
		if _, err := Decode(strings.NewReader(in)); err == nil {
			t.Errorf("%s: corrupt artifact decoded without error", name)
		}
	}
}

// TestDecodeRejectsPayloadSchemaDrift pins the load-time contract for
// corruption that used to surface only at scoring time: out-of-schema
// column indices and nominal level sets that drifted between the header
// and a tree payload.
func TestDecodeRejectsPayloadSchemaDrift(t *testing.T) {
	ds := synthDataset(t, 400, 13)
	binCol := ds.MustAttrIndex("label")

	nbCfg := bayes.DefaultConfig()
	nbCfg.Features = []int{0, 1, 2, 3}
	nb, err := bayes.Train(ds, binCol, nbCfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New("nb", KindNaiveBayes, nb, ds.Attrs(), 8, 13, "label", nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	// A hand-edited cols entry pointing outside the schema must fail the
	// load, not panic the first PredictProb.
	mangled := strings.Replace(buf.String(), `"cols": [`, `"cols": [999, `, 1)
	mangled = strings.Replace(mangled, `, 3]`, `]`, 1)
	if _, err := Decode(strings.NewReader(mangled)); err == nil {
		t.Error("naive-bayes artifact with out-of-schema column decoded without error")
	}

	dt, err := tree.Grow(ds, binCol, treeCfg(ds))
	if err != nil {
		t.Fatal(err)
	}
	ta, err := New("dt", KindDecisionTree, dt, ds.Attrs(), 8, 13, "label", nil)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := ta.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	// Permute the header's nominal level order relative to the tree
	// payload: silent misrouting of every nominal value if accepted.
	swapped := strings.Replace(buf.String(),
		"\"seal\",\n        \"gravel\"", "\"gravel\",\n        \"seal\"", 1)
	if swapped == buf.String() {
		t.Fatal("test setup: level-order replacement did not apply")
	}
	if _, err := Decode(strings.NewReader(swapped)); err == nil {
		t.Error("tree artifact with drifted level order decoded without error")
	}
}

func TestRowMapperDataset(t *testing.T) {
	ds := synthDataset(t, 400, 5)
	dt, err := tree.Grow(ds, ds.MustAttrIndex("label"), treeCfg(ds))
	if err != nil {
		t.Fatal(err)
	}
	a, err := New("map", KindDecisionTree, dt, ds.Attrs(), 8, 5, "label", nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewRowMapper(a)
	if err != nil {
		t.Fatal(err)
	}

	// An input with renamed-away targets, an extra bookkeeping column and
	// shuffled column order must score identically to in-process rows.
	in := data.NewBuilder("batch").
		Interval("segment_id").
		Nominal("surface", "gravel", "seal"). // different level order than training
		Interval("x1").
		Binary("wet")
	in.Row(1, 0, -1.5, 1) // gravel
	in.Row(2, 1, 2.0, 0)  // seal
	in.Row(3, data.Missing, 0.3, 1)
	batch := in.Build()

	rows, err := m.MapDataset(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Schema order: x1, x2, surface, wet, label, label_num.
	if rows[0][0] != -1.5 || rows[1][0] != 2.0 {
		t.Fatalf("x1 misplaced: %v", rows)
	}
	if !data.IsMissing(rows[0][1]) || !data.IsMissing(rows[0][4]) {
		t.Fatal("absent input columns must map to missing")
	}
	// gravel is level 1 in training, level 0 in the input.
	if rows[0][2] != 1 || rows[1][2] != 0 {
		t.Fatalf("nominal remap wrong: %v %v", rows[0][2], rows[1][2])
	}
	if !data.IsMissing(rows[2][2]) {
		t.Fatal("missing nominal must stay missing")
	}
	scores := Score(dt, rows)
	if !Finite(scores) {
		t.Fatalf("scores not finite: %v", scores)
	}
	for i, row := range rows {
		if scores[i] != dt.PredictProb(row) {
			t.Fatal("Score diverges from direct prediction")
		}
	}

	// Kind conflict: a nominal input column for an interval schema column.
	bad := data.NewBuilder("bad").Nominal("x1", "a")
	bad.Row(0)
	if _, err := m.MapDataset(bad.Build()); err == nil {
		t.Fatal("kind conflict not rejected")
	}

	// A binary schema column fed from an unannotated (interval) CSV column
	// must reject non-0/1 values instead of letting learners index per-class
	// tables out of range.
	badBin := data.NewBuilder("badbin").Interval("wet")
	badBin.Row(7)
	if _, err := m.MapDataset(badBin.Build()); err == nil {
		t.Fatal("out-of-range binary value not rejected")
	}
	okBin := data.NewBuilder("okbin").Interval("wet")
	okBin.Row(1)
	okBin.Row(data.Missing)
	if _, err := m.MapDataset(okBin.Build()); err != nil {
		t.Fatalf("0/1/missing binary values rejected: %v", err)
	}
}

func TestRowMapperValues(t *testing.T) {
	ds := synthDataset(t, 400, 9)
	dt, err := tree.Grow(ds, ds.MustAttrIndex("label"), treeCfg(ds))
	if err != nil {
		t.Fatal(err)
	}
	a, err := New("vals", KindDecisionTree, dt, ds.Attrs(), 8, 9, "label", nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewRowMapper(a)
	if err != nil {
		t.Fatal(err)
	}
	row, err := m.MapValues(map[string]any{
		"x1":      1.5,
		"x2":      "0.25",
		"surface": "gravel",
		"wet":     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != 1.5 || row[1] != 0.25 || row[2] != 1 || row[3] != 1 {
		t.Fatalf("row = %v", row)
	}
	if !data.IsMissing(row[4]) || !data.IsMissing(row[5]) {
		t.Fatal("unset targets must be missing")
	}
	// Unseen nominal level scores as missing rather than erroring.
	row, err = m.MapValues(map[string]any{"surface": "marshmallow"})
	if err != nil {
		t.Fatal(err)
	}
	if !data.IsMissing(row[2]) {
		t.Fatal("unseen level must map to missing")
	}
	// Typos, numbers for nominals and bad binaries fail loudly.
	for name, vals := range map[string]map[string]any{
		"unknown attr":    {"aad": 12.0},
		"nominal number":  {"surface": 2.0},
		"bad binary":      {"wet": 3.0},
		"bad binary text": {"wet": "maybe"},
		"bad interval":    {"x1": "fast"},
		"bad type":        {"x1": []string{"no"}},
	} {
		if _, err := m.MapValues(vals); err == nil {
			t.Errorf("%s: not rejected", name)
		}
	}
}
