// Package engine provides the bounded worker pool behind the study's
// embarrassingly parallel experiments: the Table 3/4 threshold sweeps,
// cross-validation folds and k-means restarts. Tasks are indexed, results
// are returned in index order, and every task derives its randomness from
// its own index (or a per-task seed), so the output is bit-identical
// whatever the worker count — parallelism changes wall-clock time, never
// results.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs fn(0) … fn(n-1) on up to workers goroutines and returns the
// results in index order. workers <= 0 selects GOMAXPROCS; workers == 1
// runs inline with no goroutines. On failure the pool stops claiming new
// tasks, the results are discarded, and the error of the lowest failing
// index is returned — deterministically, regardless of completion order:
// tasks are claimed in index order, so the lowest failing index is always
// claimed (and its error recorded) before any higher-index failure can
// halt the pool.
//
// fn must be safe for concurrent calls and should depend only on its index
// and immutable shared state; under that contract Map is deterministic.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
