package engine

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		out, err := Map(workers, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 50 {
			t.Fatalf("workers=%d: len = %d", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("empty map: %v, %v", out, err)
	}
}

func TestMapFirstErrorByIndexWins(t *testing.T) {
	wantErr := errors.New("boom-3")
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, 20, func(i int) (int, error) {
			if i == 7 {
				return 0, errors.New("boom-7")
			}
			if i == 3 {
				return 0, wantErr
			}
			return i, nil
		})
		if err == nil || err.Error() != "boom-3" {
			t.Fatalf("workers=%d: err = %v, want boom-3 (lowest index)", workers, err)
		}
	}
}

func TestMapRunsEveryTaskOnce(t *testing.T) {
	var calls [200]atomic.Int32
	_, err := Map(8, len(calls), func(i int) (struct{}, error) {
		calls[i].Add(1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range calls {
		if c := calls[i].Load(); c != 1 {
			t.Fatalf("task %d ran %d times", i, c)
		}
	}
}

// TestMapFailFastSkipsUnstartedTasks checks that a failure stops the pool
// from claiming new work while keeping the lowest-index error guarantee.
func TestMapFailFastSkipsUnstartedTasks(t *testing.T) {
	var calls atomic.Int64
	_, err := Map(1, 1000, func(i int) (int, error) {
		calls.Add(1)
		if i == 2 {
			return 0, fmt.Errorf("fail-2")
		}
		return i, nil
	})
	if err == nil || err.Error() != "fail-2" {
		t.Fatalf("err = %v", err)
	}
	if c := calls.Load(); c > 3 {
		t.Fatalf("pool kept going after failure: %d calls", c)
	}
}
