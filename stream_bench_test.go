package roadcrash

import (
	"sync"
	"testing"

	"roadcrash/internal/artifact"
	"roadcrash/internal/core"
	"roadcrash/internal/data"
	"roadcrash/internal/roadnet"
)

// The streaming benchmarks pin the tentpole's constant-memory claim
// (recorded in BENCH_3.json): bytes/op and allocs/op of the out-of-core
// scorer stay flat as the generated feed grows from 100k to 1M rows,
// while the in-memory path's footprint scales with the row count.

var (
	benchArtOnce sync.Once
	benchArt     *artifact.Artifact
	benchArtErr  error
)

// benchArtifact trains the small-scale phase 2 decision tree once.
func benchArtifact(b *testing.B) *artifact.Artifact {
	b.Helper()
	benchArtOnce.Do(func() {
		var study *core.Study
		study, benchArtErr = core.NewStudy(core.SmallConfig())
		if benchArtErr != nil {
			return
		}
		benchArt, benchArtErr = study.ExportArtifact(core.ExportOptions{Phase: 2, Threshold: 8})
	})
	if benchArtErr != nil {
		b.Fatal(benchArtErr)
	}
	return benchArt
}

// benchStreamScore streams rows generated segment-year rows through the
// batch scorer.
func benchStreamScore(b *testing.B, rows int) {
	a := benchArtifact(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := roadnet.DefaultScenarioOptions(rows)
		stream, err := roadnet.NewScenarioStream(opt)
		if err != nil {
			b.Fatal(err)
		}
		bs, err := artifact.NewBatchScorer(a)
		if err != nil {
			b.Fatal(err)
		}
		n, err := bs.ScoreAll(stream, nil)
		if err != nil {
			b.Fatal(err)
		}
		if n != rows {
			b.Fatalf("scored %d rows, want %d", n, rows)
		}
	}
	b.ReportMetric(float64(rows), "rows/op")
}

func BenchmarkStreamScore100k(b *testing.B) { benchStreamScore(b, 100000) }

func BenchmarkStreamScore1M(b *testing.B) { benchStreamScore(b, 1000000) }

// BenchmarkInMemoryScore100k is the contrast case: the same 100k generated
// rows materialized into a Dataset and scored through MapDataset + Score.
// Its bytes/op scale with the row count — the pre-streaming behavior of
// every ingestion path.
func BenchmarkInMemoryScore100k(b *testing.B) {
	const rows = 100000
	a := benchArtifact(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream, err := roadnet.NewScenarioStream(roadnet.DefaultScenarioOptions(rows))
		if err != nil {
			b.Fatal(err)
		}
		ds, err := data.ReadAll("feed", stream)
		if err != nil {
			b.Fatal(err)
		}
		scorer, err := a.Model()
		if err != nil {
			b.Fatal(err)
		}
		mapper, err := artifact.NewRowMapper(a)
		if err != nil {
			b.Fatal(err)
		}
		mapped, err := mapper.MapDataset(ds)
		if err != nil {
			b.Fatal(err)
		}
		if got := len(artifact.Score(scorer, mapped)); got != rows {
			b.Fatalf("scored %d rows, want %d", got, rows)
		}
	}
	b.ReportMetric(float64(rows), "rows/op")
}
